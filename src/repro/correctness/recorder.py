"""Schedule record/replay: the ``.psched`` artifact.

A recorded run captures the dispatcher's complete decision stream:

* **P** -- process spawns ``ordinal:name`` (ordinals are per-engine and
  per-run stable; kernel pids are process-global and are not);
* **D** -- dispatches ``ordinal:start`` in dispatch order (the start
  tick doubles as a virtual-time checksum);
* **S** -- SELFSCHED grabs ``member:index`` in fetch order;
* **L** -- lock grants ``member:lockname`` in acquisition order;
* **A** -- accept matches ``receiver:sender:mtype`` in match order
  (message seq numbers are process-global, so matches are identified
  by their per-run-stable task ids).

The artifact is plain text: a ``#psched 1`` magic line, one ``meta``
line, then chunked record lines (16 tokens each) -- compact, diffable
and stable under round-trips.

Replay is a third dispatcher mode (``PISCES_DISPATCHER=replay``): the
engine *peeks* the next D record to drive selection and the
:class:`Schedule` verifies every decision as the hooks consume it,
raising :class:`~repro.errors.ReplayDivergence` on the first mismatch.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ReplayDivergence, ScheduleFormatError

MAGIC = "#psched 1"
_TOKENS_PER_LINE = 16


class ScheduleRecorder:
    """Accumulates the decision stream of one run (the ``sched_hook``).

    Hook methods never touch engine state and charge no virtual time:
    a recorded run is bit-identical to an unrecorded one.
    """

    def __init__(self, path: Union[str, Path, None] = None,
                 meta: Optional[Dict[str, str]] = None):
        #: When set, :meth:`save` runs automatically at engine shutdown.
        self.autosave_path = None if path is None else Path(path)
        self.meta: Dict[str, str] = dict(meta or {})
        self.spawns: List[Tuple[int, str]] = []
        self.dispatches: List[Tuple[int, int]] = []
        self.selfsched: List[Tuple[int, int]] = []
        self.lock_grants: List[Tuple[int, str]] = []
        self.accepts: List[Tuple[str, str, str]] = []
        self._saved = False

    # ------------------------------------------------------------ hooks --

    def on_spawn(self, ordinal: int, name: str) -> None:
        self.spawns.append((ordinal, name))

    def on_dispatch(self, ordinal: int, start: int, name: str) -> None:
        self.dispatches.append((ordinal, start))

    def on_selfsched(self, member: int, index: int) -> None:
        self.selfsched.append((member, index))

    def on_lock_grant(self, member: int, lock: str) -> None:
        self.lock_grants.append((member, lock))

    def on_accept_match(self, receiver: str, sender: str, mtype: str) -> None:
        self.accepts.append((receiver, sender, mtype))

    # ----------------------------------------------------------- output --

    def dumps(self) -> str:
        lines = [MAGIC]
        meta = dict(self.meta)
        meta.setdefault("spawns", str(len(self.spawns)))
        meta.setdefault("dispatches", str(len(self.dispatches)))
        lines.append("meta " + " ".join(
            f"{k}={v}" for k, v in sorted(meta.items())))

        def chunk(tag: str, tokens: List[str]) -> None:
            for i in range(0, len(tokens), _TOKENS_PER_LINE):
                lines.append(tag + " " + " ".join(
                    tokens[i:i + _TOKENS_PER_LINE]))

        chunk("P", [f"{o}:{n}" for o, n in self.spawns])
        chunk("D", [f"{o}:{s}" for o, s in self.dispatches])
        chunk("S", [f"{m}:{i}" for m, i in self.selfsched])
        chunk("L", [f"{m}:{lk}" for m, lk in self.lock_grants])
        chunk("A", [f"{r}:{s}:{t}" for r, s, t in self.accepts])
        return "\n".join(lines) + "\n"

    def save(self, path: Union[str, Path, None] = None) -> Path:
        """Write the artifact (idempotent for the autosave path)."""
        target = Path(path) if path is not None else self.autosave_path
        if target is None:
            raise ValueError("ScheduleRecorder.save: no path given and no "
                             "autosave path configured")
        target.write_text(self.dumps(), encoding="utf-8")
        self._saved = True
        return target

    def autosave(self) -> None:
        """Engine-shutdown hook: flush to the autosave path once."""
        if self.autosave_path is not None and not self._saved:
            self.save()

    def as_schedule(self) -> "Schedule":
        """An in-memory :class:`Schedule` over this recording."""
        return Schedule(spawns=list(self.spawns),
                        dispatches=list(self.dispatches),
                        selfsched=list(self.selfsched),
                        lock_grants=list(self.lock_grants),
                        accepts=list(self.accepts), meta=dict(self.meta))

    def position(self) -> Dict[str, int]:
        """Per-stream record counts (the run's schedule position --
        stamped into export/checkpoint manifests)."""
        return {"P": len(self.spawns), "D": len(self.dispatches),
                "S": len(self.selfsched), "L": len(self.lock_grants),
                "A": len(self.accepts)}

    def consumed_streams(self) -> Dict[str, list]:
        """Everything recorded so far, keyed by stream tag (the uniform
        prefix interface shared with :meth:`Schedule.consumed_streams`:
        for a live recorder the whole recording *is* the prefix)."""
        return {"P": list(self.spawns), "D": list(self.dispatches),
                "S": list(self.selfsched), "L": list(self.lock_grants),
                "A": list(self.accepts)}


class Schedule:
    """A parsed ``.psched`` stream plus the replay verification cursors.

    Installed as the replaying engine's ``sched_hook``: each ``on_*``
    call *consumes* the next record of its stream and raises
    :class:`~repro.errors.ReplayDivergence` if the live decision
    differs.  :meth:`peek_dispatch` additionally lets the replay
    dispatcher drive selection without consuming.
    """

    def __init__(self, spawns: List[Tuple[int, str]],
                 dispatches: List[Tuple[int, int]],
                 selfsched: List[Tuple[int, int]],
                 lock_grants: List[Tuple[int, str]],
                 accepts: List[Tuple[str, str, str]],
                 meta: Optional[Dict[str, str]] = None):
        self.spawns = spawns
        self.dispatches = dispatches
        self.selfsched = selfsched
        self.lock_grants = lock_grants
        self.accepts = accepts
        self.meta = dict(meta or {})
        self._names: Dict[int, str] = dict(spawns)
        self._cursor = {"P": 0, "D": 0, "S": 0, "L": 0, "A": 0}

    # ------------------------------------------------------------ parse --

    @classmethod
    def parse(cls, text: str) -> "Schedule":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines or lines[0].strip() != MAGIC:
            raise ScheduleFormatError(
                f"not a .psched artifact (expected {MAGIC!r} header)")
        meta: Dict[str, str] = {}
        streams: Dict[str, list] = {"P": [], "D": [], "S": [], "L": [], "A": []}
        for ln in lines[1:]:
            tag, _, rest = ln.partition(" ")
            if tag == "meta":
                for tok in rest.split():
                    k, _, v = tok.partition("=")
                    meta[k] = v
                continue
            if tag not in streams:
                raise ScheduleFormatError(f"unknown record tag {tag!r}")
            for tok in rest.split():
                try:
                    if tag == "P":
                        o, _, n = tok.partition(":")
                        streams[tag].append((int(o), n))
                    elif tag == "D":
                        o, _, s = tok.partition(":")
                        streams[tag].append((int(o), int(s)))
                    elif tag == "S":
                        m, _, i = tok.partition(":")
                        streams[tag].append((int(m), int(i)))
                    elif tag == "L":
                        m, _, lk = tok.partition(":")
                        streams[tag].append((int(m), lk))
                    else:  # A: receiver:sender:mtype (mtype may hold ':')
                        r, _, rest2 = tok.partition(":")
                        s, _, t = rest2.partition(":")
                        streams[tag].append((r, s, t))
                except ValueError as e:
                    raise ScheduleFormatError(
                        f"bad {tag} token {tok!r}: {e}") from None
        return cls(spawns=streams["P"], dispatches=streams["D"],
                   selfsched=streams["S"], lock_grants=streams["L"],
                   accepts=streams["A"], meta=meta)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Schedule":
        return cls.parse(Path(path).read_text(encoding="utf-8"))

    # ----------------------------------------------------------- replay --

    def reset(self) -> None:
        for k in self._cursor:
            self._cursor[k] = 0

    def name_of(self, ordinal: int) -> str:
        return self._names.get(ordinal, f"<spawn #{ordinal}>")

    def peek_dispatch(self) -> Optional[Tuple[int, int]]:
        """The next recorded dispatch (ordinal, start), not consumed."""
        i = self._cursor["D"]
        if i >= len(self.dispatches):
            return None
        return self.dispatches[i]

    @property
    def exhausted(self) -> bool:
        return self._cursor["D"] >= len(self.dispatches)

    def remaining(self, stream: str) -> int:
        """Records of ``stream`` ("P"/"D"/"S"/"L"/"A") not yet consumed."""
        records = {"P": self.spawns, "D": self.dispatches,
                   "S": self.selfsched, "L": self.lock_grants,
                   "A": self.accepts}[stream]
        return len(records) - self._cursor[stream]

    def position(self) -> Dict[str, int]:
        """Per-stream *consumed* counts (replay cursor position)."""
        return dict(self._cursor)

    def consumed_streams(self) -> Dict[str, list]:
        """The already-verified prefix of each stream (what a checkpoint
        taken mid-replay must carry)."""
        return {"P": self.spawns[:self._cursor["P"]],
                "D": self.dispatches[:self._cursor["D"]],
                "S": self.selfsched[:self._cursor["S"]],
                "L": self.lock_grants[:self._cursor["L"]],
                "A": self.accepts[:self._cursor["A"]]}

    def progress(self) -> str:
        c = self._cursor
        return (f"dispatch {c['D']}/{len(self.dispatches)}, "
                f"spawn {c['P']}/{len(self.spawns)}, "
                f"selfsched {c['S']}/{len(self.selfsched)}, "
                f"lock {c['L']}/{len(self.lock_grants)}, "
                f"accept {c['A']}/{len(self.accepts)}")

    def _next(self, stream: str, records: list, live: tuple,
              what: str) -> None:
        i = self._cursor[stream]
        if i >= len(records):
            raise ReplayDivergence(
                f"replay ran past the recorded schedule: live run produced "
                f"an extra {what} {live!r} (after {self.progress()})")
        rec = records[i]
        if rec != live:
            raise ReplayDivergence(
                f"replay diverged at {what} #{i}: recorded {rec!r}, "
                f"live run produced {live!r} ({self.progress()})")
        self._cursor[stream] = i + 1

    # The sched_hook interface: consume == verify.

    def on_spawn(self, ordinal: int, name: str) -> None:
        self._next("P", self.spawns, (ordinal, name), "spawn")

    def on_dispatch(self, ordinal: int, start: int, name: str) -> None:
        self._next("D", self.dispatches, (ordinal, start),
                   f"dispatch of {name!r}")

    def on_selfsched(self, member: int, index: int) -> None:
        self._next("S", self.selfsched, (member, index), "SELFSCHED grab")

    def on_lock_grant(self, member: int, lock: str) -> None:
        self._next("L", self.lock_grants, (member, lock), "lock grant")

    def on_accept_match(self, receiver: str, sender: str, mtype: str) -> None:
        self._next("A", self.accepts, (receiver, sender, mtype),
                   "accept match")

    def check_complete(self) -> None:
        """Assert every recorded decision was replayed (end-of-run)."""
        for stream, records in (("P", self.spawns), ("D", self.dispatches),
                                ("S", self.selfsched),
                                ("L", self.lock_grants),
                                ("A", self.accepts)):
            if self._cursor[stream] != len(records):
                raise ReplayDivergence(
                    f"replay ended early: {self.progress()}")
