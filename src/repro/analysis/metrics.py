"""Run metrics: utilization, speedup, message and lock statistics.

The tools a PISCES user would apply to trace output to "performance
tune" a program by editing its configuration mapping (section 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.vm import PiscesVM, RunResult
from ..util.tables import format_table


@dataclass
class RunMetrics:
    """Summary measurements of one completed run."""

    elapsed: int
    pe_busy: Dict[int, int]
    pe_utilization: Dict[int, float]
    messages_sent: int
    message_bytes: int
    accepts: int
    accept_timeouts: int
    tasks_started: int
    forcesplits: int
    window_bytes: int
    heap_high_water: int
    #: Window data plane: bytes that actually crossed it (cache hits
    #: move none) and the cache outcome counts.
    window_bytes_moved: int = 0
    window_cache_hits: int = 0
    window_cache_misses: int = 0
    #: Registry-derived figures (None when the observability registry
    #: was disabled for the run).
    messages_accepted: Optional[int] = None
    mean_send_accept_latency: Optional[float] = None

    @property
    def mean_utilization(self) -> float:
        if not self.pe_utilization:
            return 0.0
        return sum(self.pe_utilization.values()) / len(self.pe_utilization)

    def table(self) -> str:
        rows = [
            ["elapsed (ticks)", self.elapsed],
            ["PEs used", len(self.pe_busy)],
            ["mean PE utilization", f"{100 * self.mean_utilization:.1f}%"],
            ["messages sent", self.messages_sent],
            ["message bytes", self.message_bytes],
            ["accepts / timeouts", f"{self.accepts} / {self.accept_timeouts}"],
            ["tasks started", self.tasks_started],
            ["force splits", self.forcesplits],
            ["window bytes requested", self.window_bytes],
            ["window bytes moved (data plane)", self.window_bytes_moved],
            ["window cache hits / misses",
             f"{self.window_cache_hits} / {self.window_cache_misses}"],
            ["heap high-water (bytes)", self.heap_high_water],
        ]
        if self.messages_accepted is not None:
            rows.append(["messages accepted", self.messages_accepted])
        if self.mean_send_accept_latency is not None:
            rows.append(["mean send->accept latency",
                         f"{self.mean_send_accept_latency:.1f} ticks"])
        return format_table(["metric", "value"], rows, title="RUN METRICS")


def collect_metrics(vm: PiscesVM) -> RunMetrics:
    """Measure a VM after (or during) a run."""
    elapsed = max(1, vm.machine.elapsed())
    used = vm.config.used_pes()
    busy = {pe: vm.machine.clocks[pe].busy_ticks for pe in used}
    st = vm.stats
    accepted: Optional[int] = None
    latency: Optional[float] = None
    reg = vm.metrics
    if reg.families():
        accepted = reg.counter_total("messages_accepted")
        lat = reg.histogram_merged("send_accept_latency_ticks")
        if lat is not None and lat.count:
            latency = lat.mean
    return RunMetrics(
        elapsed=vm.machine.elapsed(),
        pe_busy=busy,
        pe_utilization={pe: b / elapsed for pe, b in busy.items()},
        messages_sent=st.messages_sent,
        message_bytes=st.message_bytes_sent,
        accepts=st.accepts,
        accept_timeouts=st.accept_timeouts,
        tasks_started=st.tasks_started,
        forcesplits=st.forcesplits,
        window_bytes=st.window_bytes_read + st.window_bytes_written,
        window_bytes_moved=st.window_bytes_moved,
        window_cache_hits=st.window_cache_hits,
        window_cache_misses=st.window_cache_misses,
        heap_high_water=vm.machine.shared.stats.high_water,
        messages_accepted=accepted,
        mean_send_accept_latency=latency,
    )


@dataclass
class ScalingPoint:
    """One point of a scaling study: configuration size vs elapsed time."""

    label: str
    parallelism: int
    elapsed: int


def speedup_table(points: Sequence[ScalingPoint]) -> str:
    """Speedup/efficiency table relative to the first (baseline) point."""
    if not points:
        return "(no scaling points)"
    base = points[0].elapsed
    rows = []
    for p in points:
        sp = base / p.elapsed if p.elapsed else float("inf")
        eff = sp / p.parallelism if p.parallelism else 0.0
        rows.append([p.label, p.parallelism, p.elapsed,
                     f"{sp:.2f}x", f"{100 * eff:.0f}%"])
    return format_table(["config", "parallelism", "elapsed", "speedup",
                         "efficiency"], rows, title="SCALING")


def lock_contention(vm: PiscesVM) -> List[Tuple[str, int, int]]:
    """(lock name, acquisitions, contended) over all live+dead tasks."""
    out = []
    for task in vm.tasks.values():
        for name, lk in task.shared_state.locks.items():
            out.append((f"{task.tid}/{name}", lk.acquisitions,
                        lk.contended_acquisitions))
    return out


def traffic_matrix(vm: PiscesVM) -> Dict[Tuple[str, str], int]:
    """Message counts between *tasktypes*.

    Preferred source: the observability registry's ``msg_traffic``
    counters (labelled src/dst/mtype at send time, so names are exact
    even for tasks long terminated).  Fallback: MSG_SEND trace events,
    which requires MSG_SEND tracing to have been enabled for the run;
    there the receiver is resolved through the VM's task table, and
    controllers and the user terminal appear under their kind names.
    """
    from ..core.tracing import TraceEventType

    by_label = vm.metrics.counters("msg_traffic")
    if by_label:
        out: Dict[Tuple[str, str], int] = {}
        for lkey, c in by_label.items():
            d = dict(lkey)
            key = (d["src"], d["dst"])
            out[key] = out.get(key, 0) + c.value
        return out

    def name_of(tid) -> str:
        task = vm.tasks.get(tid)
        if task is not None:
            return task.ttype.name
        ctrl = vm.controllers.get(tid)
        if ctrl is not None:
            return f"<{ctrl.kind}>"
        if tid.cluster == 0:
            return "<user>"
        return "<unknown>"

    out: Dict[Tuple[str, str], int] = {}
    for e in vm.tracer.of_type(TraceEventType.MSG_SEND):
        if e.other is None:
            continue
        key = (name_of(e.task), name_of(e.other))
        out[key] = out.get(key, 0) + 1
    return out


def traffic_table(vm: PiscesVM) -> str:
    """The traffic matrix as a table, heaviest flows first."""
    m = traffic_matrix(vm)
    if not m:
        return "(no MSG_SEND events traced)"
    rows = [[src, dst, n]
            for (src, dst), n in sorted(m.items(),
                                        key=lambda kv: -kv[1])]
    return format_table(["from", "to", "messages"], rows,
                        title="MESSAGE TRAFFIC (by tasktype)")


def load_balance(executed: Dict[int, int]) -> float:
    """Imbalance factor of a per-member work map: max/mean (1.0 = perfect).

    Used to compare PRESCHED and SELFSCHED loop scheduling.
    """
    if not executed:
        return 1.0
    vals = list(executed.values())
    mean = sum(vals) / len(vals)
    return max(vals) / mean if mean else 1.0
