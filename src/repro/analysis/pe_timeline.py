"""Per-PE execution timelines from recorded engine slices.

Complements the task-centric :mod:`repro.analysis.timeline`: with
``vm.engine.record_slices = True`` the engine logs every executed slice
as (pe, start, end, process name), from which this module renders a
PE-occupancy gantt and computes gaps -- the view a user tuning a
configuration mapping (section 9) actually wants: *which PEs sit idle?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

Slice = Tuple[int, int, int, str]   # (pe, start, end, name)


@dataclass
class PEActivity:
    pe: int
    busy: int
    horizon: int
    slices: List[Slice]

    @property
    def utilization(self) -> float:
        return self.busy / self.horizon if self.horizon else 0.0

    def largest_gap(self) -> int:
        """Longest idle interval between slices (or before the first)."""
        gap = 0
        pos = 0
        for _, start, end, _ in sorted(self.slices, key=lambda s: s[1]):
            gap = max(gap, start - pos)
            pos = max(pos, end)
        return max(gap, self.horizon - pos)


def activities(slices: Sequence[Slice]) -> Dict[int, PEActivity]:
    horizon = max((end for _, _, end, _ in slices), default=0)
    by_pe: Dict[int, List[Slice]] = {}
    for s in slices:
        by_pe.setdefault(s[0], []).append(s)
    return {
        pe: PEActivity(pe=pe,
                       busy=sum(e - s for _, s, e, _ in group),
                       horizon=horizon, slices=group)
        for pe, group in sorted(by_pe.items())
    }


def pe_gantt(slices: Sequence[Slice], width: int = 72) -> str:
    """ASCII occupancy chart: one row per PE, '#' where busy."""
    acts = activities(slices)
    if not acts:
        return "(no slices recorded; set engine.record_slices = True)"
    horizon = max(a.horizon for a in acts.values())
    lines = [f"virtual time 0 .. {horizon} ticks "
             f"({max(1, horizon // width)} ticks/char)"]
    for pe, act in acts.items():
        row = [" "] * width
        for _, start, end, _ in act.slices:
            a = min(width - 1, start * width // max(1, horizon))
            b = min(width - 1, max(a, (end - 1) * width // max(1, horizon)))
            for i in range(a, b + 1):
                row[i] = "#"
        lines.append(f"PE {pe:>2} ({100 * act.utilization:5.1f}%) "
                     f"|{''.join(row)}|")
    return "\n".join(lines)


def idle_report(slices: Sequence[Slice]) -> List[Tuple[int, float, int]]:
    """(pe, utilization, largest idle gap) per PE -- the tuning signal."""
    return [(pe, a.utilization, a.largest_gap())
            for pe, a in activities(slices).items()]
