"""Configuration tuning: sweep mappings, compare elapsed times.

Section 4: "the program can be 'performance tuned' to some degree by
control of the mapping of virtual machine to hardware."  Section 9:
"Experimentation with different mappings ... is straightforward, by
editing and saving several variants of a configuration mapping."

These helpers automate that experimentation loop: run the same program
under a family of configurations and report the best mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..config.configuration import ClusterSpec, Configuration
from ..core.task import TaskRegistry
from ..core.vm import PiscesVM
from ..flex.machine import FlexMachine
from ..util.tables import format_table

#: A factory returning a fresh machine per trial (clocks are per-run).
MachineFactory = Callable[[], FlexMachine]


@dataclass
class TuningTrial:
    label: str
    configuration: Configuration
    elapsed: int
    value: Any

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TuningTrial({self.label!r}, elapsed={self.elapsed})"


@dataclass
class TuningResult:
    trials: List[TuningTrial]

    @property
    def best(self) -> TuningTrial:
        return min(self.trials, key=lambda t: t.elapsed)

    def table(self) -> str:
        base = self.trials[0].elapsed
        rows = []
        for t in self.trials:
            mark = " <-- best" if t is self.best else ""
            rows.append([t.label, t.elapsed,
                         f"{base / t.elapsed:.2f}x{mark}"])
        return format_table(["mapping", "elapsed (ticks)", "vs first"],
                            rows, title="CONFIGURATION TUNING")


def sweep(tasktype_name: str, registry: TaskRegistry,
          configurations: Sequence[Tuple[str, Configuration]],
          machine_factory: MachineFactory, *args: Any) -> TuningResult:
    """Run one tasktype under each (label, configuration); returns the
    comparison.  Each trial gets a fresh machine (fresh clocks)."""
    trials = []
    for label, cfg in configurations:
        vm = PiscesVM(cfg, registry=registry, machine=machine_factory())
        r = vm.run(tasktype_name, *args)
        trials.append(TuningTrial(label=label, configuration=cfg,
                                  elapsed=r.elapsed, value=r.value))
    return TuningResult(trials=trials)


def force_size_sweep(tasktype_name: str, registry: TaskRegistry,
                     machine_factory: MachineFactory, *args: Any,
                     sizes: Sequence[int] = (1, 2, 4, 8),
                     primary_pe: int = 3, slots: int = 2,
                     first_secondary_pe: int = 4) -> TuningResult:
    """The most common tuning question: how many force PEs?

    Builds single-cluster configurations whose force sizes are
    ``sizes`` and sweeps them.
    """
    configs = []
    for size in sizes:
        sec = tuple(range(first_secondary_pe, first_secondary_pe + size - 1))
        cfg = Configuration(
            clusters=(ClusterSpec(1, primary_pe, slots,
                                  secondary_pes=sec),),
            name=f"force-{size}")
        configs.append((f"force of {size}", cfg))
    return sweep(tasktype_name, registry, configs, machine_factory, *args)
