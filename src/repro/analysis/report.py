"""Combined run reports: metrics, storage, traffic, timelines."""

from __future__ import annotations

from typing import Optional

from ..core.vm import PiscesVM
from .metrics import collect_metrics, traffic_table
from .pe_timeline import pe_gantt
from .storage import measure, storage_table
from .timeline import Timeline


def run_report(vm: PiscesVM, gantt_width: int = 64,
               include_gantt: bool = True) -> str:
    """A post-run report a user would read after a traced execution.

    Includes whatever the run recorded: metrics and storage always; a
    by-tasktype traffic matrix when MSG_SEND tracing was on; a per-task
    gantt when any tracing was on; a per-PE occupancy chart when
    ``vm.engine.record_slices`` was set.
    """
    parts = [collect_metrics(vm).table()]
    parts.append("")
    parts.append(storage_table([measure(vm)]))
    traffic = traffic_table(vm)
    if "no MSG_SEND" not in traffic:
        parts.append("")
        parts.append(traffic)
    if include_gantt and vm.tracer.events:
        tl = Timeline.from_events(vm.tracer.events)
        parts.append("")
        parts.append(tl.gantt(width=gantt_width))
    if vm.engine.slices:
        parts.append("")
        parts.append(pe_gantt(vm.engine.slices, width=gantt_width))
    if vm.metrics.families():
        parts.append("")
        parts.append(vm.metrics.snapshot_text())
    if vm.race_detector is not None:
        parts.append("")
        parts.append(vm.race_detector.report_text())
    if vm.profiler is not None and vm.profiler.slices():
        from ..obs.profile import profile_report
        parts.append("")
        parts.append(profile_report(vm.profiler))
    return "\n".join(parts)
