"""Section-13 storage-overhead measurement.

The paper's quantitative claims:

* "the PISCES 2 system uses less than 2.5% of each PE's local memory
  (for system code and data)";
* "and less than 0.3% of shared memory (for system tables)";
* "Storage used for message passing is dynamically recovered and
  reused";
* the message area "only becomes significant when large numbers of
  messages (or very large messages) are sent and left waiting in a
  task's in-queue without being accepted".

These helpers take the live measurements off a VM and check them
against the paper's bounds; the storage benchmark prints the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.vm import PiscesVM
from ..util.tables import format_table

#: The paper's stated bounds.
PAPER_LOCAL_BOUND = 0.025
PAPER_SHARED_TABLE_BOUND = 0.003


@dataclass
class StorageMeasurement:
    """One configuration's storage-overhead measurements."""

    config_name: str
    n_clusters: int
    slots_per_cluster: Tuple[int, ...]
    local_fraction_max: float       # worst PE: pisces code+data / local
    shared_table_bytes: int
    shared_table_fraction: float
    message_bytes_live: int
    heap_high_water: int

    @property
    def meets_local_bound(self) -> bool:
        return self.local_fraction_max < PAPER_LOCAL_BOUND

    @property
    def meets_shared_bound(self) -> bool:
        return self.shared_table_fraction < PAPER_SHARED_TABLE_BOUND


def measure(vm: PiscesVM) -> StorageMeasurement:
    rep = vm.storage_report()
    local = rep["local_system_fraction"]
    return StorageMeasurement(
        config_name=vm.config.name,
        n_clusters=len(vm.config.clusters),
        slots_per_cluster=tuple(c.slots for c in sorted(
            vm.config.clusters, key=lambda c: c.number)),
        local_fraction_max=max(local.values()) if local else 0.0,
        shared_table_bytes=rep["shared_table_bytes"],
        shared_table_fraction=rep["shared_table_fraction"],
        message_bytes_live=rep["message_bytes_live"],
        heap_high_water=rep["heap_high_water"],
    )


def storage_table(ms: List[StorageMeasurement]) -> str:
    rows = []
    for m in ms:
        rows.append([
            m.config_name,
            m.n_clusters,
            "/".join(map(str, m.slots_per_cluster)),
            f"{100 * m.local_fraction_max:.2f}%",
            f"< {100 * PAPER_LOCAL_BOUND:.1f}%"
            + (" OK" if m.meets_local_bound else " EXCEEDED"),
            m.shared_table_bytes,
            f"{100 * m.shared_table_fraction:.3f}%",
            f"< {100 * PAPER_SHARED_TABLE_BOUND:.1f}%"
            + (" OK" if m.meets_shared_bound else " EXCEEDED"),
        ])
    return format_table(
        ["config", "clusters", "slots", "local sys", "paper bound",
         "table bytes", "shared tables", "paper bound"],
        rows, title="SECTION 13 STORAGE OVERHEAD (measured)")
