"""Off-line timeline reconstruction from trace events (section 12).

"Sending trace output to a file allows the user to study trace
information and make timing analyses off-line."  This module rebuilds
per-task lifetimes and message edges from a stream of trace events
(in-memory, or parsed back from a trace file) and renders an ASCII
gantt chart of task activity over virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, IO, Iterable, List, Optional, Tuple

from ..core.taskid import TaskId
from ..core.tracing import TraceEvent, TraceEventType


@dataclass
class TaskSpan:
    """Lifetime of one task as seen in the trace."""

    task: TaskId
    tasktype: str = ""
    pe: int = 0
    start: Optional[int] = None
    end: Optional[int] = None
    sends: int = 0
    accepts: int = 0
    barriers: int = 0
    locks: int = 0
    forcesplits: int = 0

    @property
    def duration(self) -> Optional[int]:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start


@dataclass
class MessageEdge:
    """One observed send->accept pairing candidate."""

    sender: TaskId
    receiver: TaskId
    mtype: str
    send_ticks: int


class Timeline:
    """Reconstructed run history."""

    def __init__(self) -> None:
        self.spans: Dict[TaskId, TaskSpan] = {}
        self.edges: List[MessageEdge] = []
        self.horizon: int = 0

    # ------------------------------------------------------------- build --

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "Timeline":
        tl = cls()
        for e in events:
            tl._absorb(e)
        return tl

    @classmethod
    def from_file(cls, f: IO[str]) -> "Timeline":
        """Rebuild from a trace file written by the tracer's file sink."""
        tl = cls()
        for line in f:
            line = line.strip()
            if line:
                tl._absorb(TraceEvent.parse(line))
        return tl

    def _span(self, tid: TaskId) -> TaskSpan:
        if tid not in self.spans:
            self.spans[tid] = TaskSpan(task=tid)
        return self.spans[tid]

    def _absorb(self, e: TraceEvent) -> None:
        self.horizon = max(self.horizon, e.ticks)
        s = self._span(e.task)
        if e.etype is TraceEventType.TASK_INIT:
            s.start = e.ticks
            s.pe = e.pe
            if e.info.startswith("type="):
                s.tasktype = e.info.split("=", 1)[1].split()[0]
        elif e.etype is TraceEventType.TASK_TERM:
            s.end = e.ticks
        elif e.etype is TraceEventType.MSG_SEND:
            s.sends += 1
            if e.other is not None:
                mtype = ""
                for tok in e.info.split():
                    if tok.startswith("type="):
                        mtype = tok.split("=", 1)[1]
                self.edges.append(MessageEdge(e.task, e.other, mtype, e.ticks))
        elif e.etype is TraceEventType.MSG_ACCEPT:
            s.accepts += 1
        elif e.etype is TraceEventType.BARRIER_ENTER:
            s.barriers += 1
        elif e.etype is TraceEventType.LOCK:
            s.locks += 1
        elif e.etype is TraceEventType.FORCE_SPLIT:
            s.forcesplits += 1

    # ------------------------------------------------------------ queries --

    def completed_spans(self) -> List[TaskSpan]:
        return [s for s in self.spans.values()
                if s.start is not None and s.end is not None]

    def concurrency_profile(self, buckets: int = 50) -> List[int]:
        """Tasks alive per time bucket (a crude parallelism profile)."""
        if self.horizon == 0:
            return [0] * buckets
        prof = [0] * buckets
        for s in self.completed_spans():
            b0 = min(buckets - 1, s.start * buckets // max(1, self.horizon))
            b1 = min(buckets - 1, s.end * buckets // max(1, self.horizon))
            for b in range(b0, b1 + 1):
                prof[b] += 1
        return prof

    # ------------------------------------------------------------- render --

    def gantt(self, width: int = 72) -> str:
        """ASCII gantt of task lifetimes over virtual time."""
        spans = sorted(self.completed_spans(),
                       key=lambda s: (s.start, str(s.task)))
        if not spans:
            return "(no completed task spans in trace)"
        horizon = max(1, self.horizon)
        lines = [f"virtual time 0 .. {horizon} ticks "
                 f"({horizon / width:.0f} ticks/char)"]
        for s in spans:
            a = min(width - 1, s.start * width // horizon)
            b = min(width - 1, max(a, s.end * width // horizon))
            bar = " " * a + "#" * (b - a + 1)
            label = f"{s.task} {s.tasktype}"[:24]
            lines.append(f"{label:<24} |{bar.ljust(width)}|")
        return "\n".join(lines)
