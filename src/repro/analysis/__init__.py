"""Off-line trace analysis and measurement (section 12 'timing analyses')."""

from .metrics import (
    RunMetrics,
    ScalingPoint,
    collect_metrics,
    load_balance,
    lock_contention,
    speedup_table,
    traffic_matrix,
    traffic_table,
)
from .pe_timeline import PEActivity, activities, idle_report, pe_gantt
from .report import run_report
from .tuning import TuningResult, TuningTrial, force_size_sweep, sweep
from .storage import (
    PAPER_LOCAL_BOUND,
    PAPER_SHARED_TABLE_BOUND,
    StorageMeasurement,
    measure,
    storage_table,
)
from .timeline import MessageEdge, TaskSpan, Timeline

__all__ = [
    "MessageEdge",
    "PEActivity",
    "TuningResult",
    "TuningTrial",
    "activities",
    "force_size_sweep",
    "idle_report",
    "pe_gantt",
    "sweep",
    "PAPER_LOCAL_BOUND",
    "PAPER_SHARED_TABLE_BOUND",
    "RunMetrics",
    "ScalingPoint",
    "StorageMeasurement",
    "TaskSpan",
    "Timeline",
    "collect_metrics",
    "load_balance",
    "lock_contention",
    "measure",
    "run_report",
    "speedup_table",
    "storage_table",
    "traffic_matrix",
    "traffic_table",
]
