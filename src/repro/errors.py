"""Exception hierarchy for the PISCES 2 reproduction.

Every error raised by the library derives from :class:`PiscesError`, so
applications can catch one type.  Sub-hierarchies mirror the subsystems:
the FLEX machine model, the MMOS kernel simulation, the PISCES run-time
library, the configuration environment and the Pisces Fortran
preprocessor.
"""

from __future__ import annotations


class PiscesError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------- FLEX ----

class FlexError(PiscesError):
    """Error in the FLEX/32 machine model."""


class MemoryError_(FlexError):
    """Base for simulated-memory errors (named with a trailing underscore
    to avoid shadowing the builtin)."""


class OutOfMemory(MemoryError_):
    """A simulated memory allocation could not be satisfied."""

    def __init__(self, requested: int, available: int, where: str = "shared"):
        self.requested = requested
        self.available = available
        self.where = where
        super().__init__(
            f"out of {where} memory: requested {requested} bytes, "
            f"largest satisfiable {available}"
        )


class BadFree(MemoryError_):
    """free() of an address that is not a live allocation."""


class BadPE(FlexError):
    """Reference to a processing element outside the machine."""


# ---------------------------------------------------------------- MMOS ----

class MMOSError(PiscesError):
    """Error in the MMOS kernel simulation."""


class DeadlockError(MMOSError):
    """All live processes are blocked with no pending timeout.

    Carries a human-readable ``dump`` describing the state of every
    blocked process, produced by the engine at detection time, plus a
    structured ``blocked`` list of ``(name, blocked_on, deadline)``
    tuples -- one per blocked non-daemon process -- so a crashed-PE
    hang is distinguishable from a true deadlock without parsing the
    dump text.
    """

    def __init__(self, dump: str, blocked=None):
        self.dump = dump
        #: ``[(process name, blocked_on reason, deadline or None), ...]``
        self.blocked = list(blocked or [])
        super().__init__("deadlock: all live processes blocked\n" + dump)


class ProcessKilled(MMOSError):
    """Raised *inside* a simulated process when it is killed.

    User task code should not catch this (it unwinds the task thread).
    """


class EngineShutdown(ProcessKilled):
    """Raised inside a process blocked in ACCEPT (or any kernel wait)
    when the engine shuts down underneath it.

    Subclasses :class:`ProcessKilled` so generic unwind handling keeps
    working, but is distinguishable: an accept waiter drained by
    :meth:`Engine.shutdown` fails fast with this instead of being
    silently reaped.
    """


class TimeLimitExceeded(MMOSError):
    """The configured execution time limit was reached."""

    def __init__(self, limit: int):
        self.limit = limit
        super().__init__(f"execution time limit of {limit} ticks exceeded")


class NotInProcess(MMOSError):
    """A kernel call was made from outside any simulated process."""


# ------------------------------------------------------------- run-time ----

class RuntimeLibraryError(PiscesError):
    """Error in the PISCES 2 run-time library."""


class UnknownTaskType(RuntimeLibraryError):
    """INITIATE of a tasktype that was never defined/registered."""


class UnknownTask(RuntimeLibraryError):
    """A taskid does not name a live task."""


class NoSuchCluster(RuntimeLibraryError):
    """A cluster number is not part of the current configuration."""


class MessageError(RuntimeLibraryError):
    """Malformed send/accept usage."""


class SendFailed(MessageError):
    """A SEND addressed a task known to be dead and delivery was
    required (``require_delivery=True`` or a strict-sends fault plan).

    The default PISCES semantics silently drop sends to stale taskids;
    this typed error is the opt-in failure-semantics alternative.
    """

    def __init__(self, dest, reason: str = "task is dead"):
        self.dest = dest
        self.reason = reason
        super().__init__(f"send to {dest} failed: {reason}")


class AcceptTimeout(RuntimeLibraryError):
    """An ACCEPT timed out and no DELAY handler was supplied.

    Matches the paper: with no DELAY clause a system-generated "timeout"
    is delivered; the Python binding surfaces it as this exception unless
    the caller passed ``on_timeout``/asked for the result object.
    """


class NotInForce(RuntimeLibraryError):
    """A force-only operation (BARRIER, CRITICAL, PRESCHED ...) was used
    outside a force region."""


class WindowError(RuntimeLibraryError):
    """Invalid window operation (shrink outside bounds, dead owner ...)."""


class WindowConflict(WindowError):
    """A conditional window write (``if_unchanged=True``) lost the race:
    the region was written through the data plane after this task last
    observed it, or the task holds no cached observation to validate
    against.  The owner's array is left untouched.
    """

    def __init__(self, window, detail: str = ""):
        self.window = window
        msg = f"conflicting write on {window.describe()}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


# ----------------------------------------------------------- correctness ----

class RaceError(RuntimeLibraryError):
    """A data race was detected on a SHARED COMMON variable or window
    region (two accesses, at least one a write, with no happens-before
    ordering and no common lock).

    Carries the structured :class:`~repro.correctness.RaceReport`
    evidence; raised only when the detector runs in ``raise`` mode --
    the default is to collect reports for the monitor/analysis layer.
    """

    def __init__(self, report):
        self.report = report
        super().__init__(report.describe() if hasattr(report, "describe")
                         else str(report))


class RaceWarning(UserWarning):
    """Warning category for detected races in ``warn`` mode."""


class TraceOverflow(RuntimeLibraryError):
    """The tracer's in-memory ring buffer overflowed in
    ``strict_overflow`` mode.

    Schedule recording and race analysis read the in-memory stream; a
    silently truncated stream would make a ``.psched`` artifact or a
    race report quietly wrong, so strict mode fails loudly instead.
    """


class ReplayDivergence(MMOSError):
    """A replayed run diverged from its recorded schedule.

    The replay dispatcher verifies every decision (dispatch order and
    start times, SELFSCHED grabs, lock grant order, accept matches)
    against the ``.psched`` stream; any mismatch -- a changed program,
    configuration, fault plan or environment -- raises this with the
    first differing decision.
    """


class ScheduleFormatError(MMOSError):
    """A ``.psched`` artifact could not be parsed."""


# ------------------------------------------------------------- checkpoint ----

class CheckpointError(PiscesError):
    """A checkpoint could not be taken, or a restore did not reach the
    snapshotted state (the post-replay validation digests differ)."""


class CheckpointFormatError(CheckpointError):
    """A ``.pckpt`` bundle could not be parsed (bad magic, truncated
    body, or checksum mismatch -- e.g. a file torn by a host crash)."""


# ---------------------------------------------------------------- config ----

class ConfigurationError(PiscesError):
    """Invalid virtual-machine-to-hardware configuration."""


# --------------------------------------------------------------- service ----

class ServiceError(PiscesError):
    """Base for multi-tenant run-service errors (see :mod:`repro.service`)."""


class InvalidRunSpec(ServiceError):
    """A submitted run spec names an unknown app, carries unknown or
    ill-typed fields, or cannot be built into a runnable plan."""


class UnknownRun(ServiceError):
    """A run id that the store has no record of."""


class QuotaExceeded(ServiceError):
    """A submission was refused by the tenant's admission quota (the
    REST layer maps this to ``429 Too Many Requests``)."""

    def __init__(self, tenant: str, detail: str):
        self.tenant = tenant
        self.detail = detail
        super().__init__(f"tenant {tenant!r}: {detail}")


# --------------------------------------------------------------- fortran ----

class FortranError(PiscesError):
    """Base for Pisces Fortran preprocessor errors."""


class LexError(FortranError):
    def __init__(self, msg: str, line: int, col: int = 0):
        self.line = line
        self.col = col
        super().__init__(f"line {line}: {msg}")


class ParseError(FortranError):
    def __init__(self, msg: str, line: int):
        self.line = line
        super().__init__(f"line {line}: {msg}")


class TranslationError(FortranError):
    """The parsed program cannot be translated to run-time calls."""
