"""Blocked matrix multiply at the paper's three grain sizes (section 2).

"Applications program typically can make use of several different grain
sizes of parallel operation", and PISCES 2 deliberately provides three
that a FLEX-class machine can run efficiently: clusters in parallel,
tasks within a cluster, and force code segments.  This app computes the
same C = A x B three ways:

* ``run_matmul_tasks``   -- task grain: a master partitions C into row
  blocks and farms them to worker *tasks* across clusters (windows
  carry A-blocks and B; results return by message);
* ``run_matmul_force``   -- segment grain: one task FORCESPLITs and the
  members take C rows by PRESCHED out of SHARED COMMON;
* ``run_matmul_hybrid``  -- both: one worker task per cluster, each of
  which FORCESPLITs over its cluster's secondary PEs.

All three charge the same per-cell work, so their elapsed virtual times
expose the overhead of each organization (benchmark A8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config.configuration import ClusterSpec, Configuration
from ..core.task import TaskRegistry
from ..core.taskid import Cluster, PARENT
from ..core.vm import PiscesVM
from ..flex.machine import FlexMachine

#: Ticks per output cell (an n-length dot product).
def cell_cost(n: int) -> int:
    return max(1, n // 4)


@dataclass
class MatmulResult:
    C: np.ndarray
    elapsed: int
    vm: PiscesVM


def make_inputs(n: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    A = rng.integers(-3, 4, size=(n, n)).astype(float)
    B = rng.integers(-3, 4, size=(n, n)).astype(float)
    return A, B


# ------------------------------------------------------------- task grain --

def build_tasks_registry(n: int, n_workers: int) -> TaskRegistry:
    reg = TaskRegistry()

    @reg.tasktype("MWORKER")
    def mworker(ctx, k):
        ctx.send(PARENT, "HELLO", k)
        res = yield from ctx.accept("JOB")
        wa, wb = res.args              # windows on A rows and all of B
        a = yield from ctx.window_read(wa)
        b = yield from ctx.window_read(wb)
        yield from ctx.compute(a.shape[0] * n * cell_cost(n))
        ctx.send(PARENT, "ROWS", k, a @ b)

    @reg.tasktype("MMASTER")
    def mmaster(ctx):
        A, B = make_inputs(n)
        C = np.zeros((n, n))
        wa_full = ctx.export_array("A", A)
        wb_full = ctx.export_array("B", B)
        n_clusters = len(ctx.vm.clusters)
        for k in range(n_workers):
            ctx.initiate("MWORKER", k, on=1 + (k % n_clusters))
        who = {}
        for _ in range(n_workers):
            r = yield from ctx.accept("HELLO")
            who[r.args[0]] = r.sender
        parts = wa_full.split(n_workers, axis=0)
        for k in range(n_workers):
            ctx.send(who[k], "JOB", parts[k], wb_full)
        bounds = [p.bounds[0] for p in parts]
        for _ in range(n_workers):
            r = yield from ctx.accept("ROWS")
            k, rows = r.args
            lo, hi = bounds[k]
            C[lo:hi, :] = rows
        return C

    return reg


def run_matmul_tasks(n: int = 24, n_workers: int = 4,
                     n_clusters: int = 2,
                     machine: Optional[FlexMachine] = None) -> MatmulResult:
    reg = build_tasks_registry(n, n_workers)
    clusters = tuple(ClusterSpec(i, 2 + i, max(2, n_workers))
                     for i in range(1, n_clusters + 1))
    vm = PiscesVM(Configuration(clusters=clusters, name="matmul-tasks"),
                  registry=reg, machine=machine)
    r = vm.run("MMASTER")
    return MatmulResult(C=r.value, elapsed=r.elapsed, vm=vm)


# ------------------------------------------------------------ force grain --

def build_force_registry(n: int) -> TaskRegistry:
    reg = TaskRegistry()

    def region(m):
        blk = m.common("MM")
        A, B, C = blk.A, blk.B, blk.C
        for i in m.presched(range(n)):
            C[i, :] = A[i, :] @ B
            yield from m.compute(n * cell_cost(n))

    spec = {"A": ("f8", (n, n)), "B": ("f8", (n, n)), "C": ("f8", (n, n))}

    @reg.tasktype("MFORCE", shared={"MM": spec})
    def mforce(ctx):
        A, B = make_inputs(n)
        blk = ctx.common("MM")
        blk.A[...] = A
        blk.B[...] = B
        yield from ctx.forcesplit(region)
        return np.array(blk.C, copy=True)

    return reg


def run_matmul_force(n: int = 24, force_pes: int = 3,
                     machine: Optional[FlexMachine] = None) -> MatmulResult:
    reg = build_force_registry(n)
    cfg = Configuration(clusters=(
        ClusterSpec(1, 3, 2, tuple(range(4, 4 + force_pes))),),
        name="matmul-force")
    vm = PiscesVM(cfg, registry=reg, machine=machine)
    r = vm.run("MFORCE")
    return MatmulResult(C=r.value, elapsed=r.elapsed, vm=vm)


# ------------------------------------------------------------ hybrid grain --

def build_hybrid_registry(n: int, n_clusters: int) -> TaskRegistry:
    reg = TaskRegistry()

    def region(m, a, b, out):
        rows = a.shape[0]
        for i in m.presched(range(rows)):
            out[i, :] = a[i, :] @ b
            yield from m.compute(n * cell_cost(n))

    @reg.tasktype("HWORKER")
    def hworker(ctx, k):
        ctx.send(PARENT, "HELLO", k)
        res = yield from ctx.accept("JOB")
        wa, wb = res.args
        a = yield from ctx.window_read(wa)
        b = yield from ctx.window_read(wb)
        out = np.zeros((a.shape[0], n))
        yield from ctx.forcesplit(region, a, b, out)
        ctx.send(PARENT, "ROWS", k, out)

    @reg.tasktype("HMASTER")
    def hmaster(ctx):
        A, B = make_inputs(n)
        C = np.zeros((n, n))
        wa_full = ctx.export_array("A", A)
        wb_full = ctx.export_array("B", B)
        for k in range(n_clusters):
            ctx.initiate("HWORKER", k, on=Cluster(k + 1))
        who = {}
        for _ in range(n_clusters):
            r = yield from ctx.accept("HELLO")
            who[r.args[0]] = r.sender
        parts = wa_full.split(n_clusters, axis=0)
        for k in range(n_clusters):
            ctx.send(who[k], "JOB", parts[k], wb_full)
        bounds = [p.bounds[0] for p in parts]
        for _ in range(n_clusters):
            r = yield from ctx.accept("ROWS")
            k, rows = r.args
            lo, hi = bounds[k]
            C[lo:hi, :] = rows
        return C

    return reg


def run_matmul_hybrid(n: int = 24, n_clusters: int = 2,
                      force_pes_per_cluster: int = 2,
                      machine: Optional[FlexMachine] = None) -> MatmulResult:
    """Task grain across clusters x force grain inside each."""
    reg = build_hybrid_registry(n, n_clusters)
    specs = []
    next_pe = 3 + n_clusters + 1          # leave room for primaries + master
    primaries = list(range(3, 3 + n_clusters + 1))
    # cluster 1 hosts the master too
    specs.append(ClusterSpec(1, primaries[0], 3,
                             tuple(range(next_pe,
                                         next_pe + force_pes_per_cluster))))
    next_pe += force_pes_per_cluster
    for i in range(2, n_clusters + 1):
        specs.append(ClusterSpec(i, primaries[i - 1], 3,
                                 tuple(range(next_pe,
                                             next_pe + force_pes_per_cluster))))
        next_pe += force_pes_per_cluster
    vm = PiscesVM(Configuration(clusters=tuple(specs), name="matmul-hybrid"),
                  registry=reg, machine=machine)
    r = vm.run("HMASTER")
    return MatmulResult(C=r.value, elapsed=r.elapsed, vm=vm)
