"""Application workloads used by the examples and benchmarks."""

from .fem import FEMProblem, FEMResult, build_fem_registry, run_fem
from .integrate import (
    IntegrateResult,
    build_integrate_registry,
    default_integrand,
    run_integrate,
)
from .jacobi import (
    JacobiResult,
    build_force_registry,
    build_windows_registry,
    make_problem,
    reference_solution,
    run_jacobi_force,
    run_jacobi_windows,
)
from .matmul import (
    MatmulResult,
    make_inputs,
    run_matmul_force,
    run_matmul_hybrid,
    run_matmul_tasks,
)
from .pipeline import PipelineResult, build_pipeline_registry, run_pipeline
from . import fortran_programs
from .truss import (
    TrussProblem,
    TrussResult,
    build_truss_registry,
    pratt_truss,
    run_truss,
)

__all__ = [
    "FEMProblem",
    "FEMResult",
    "IntegrateResult",
    "JacobiResult",
    "MatmulResult",
    "PipelineResult",
    "make_inputs",
    "run_matmul_force",
    "run_matmul_hybrid",
    "run_matmul_tasks",
    "TrussProblem",
    "TrussResult",
    "build_truss_registry",
    "pratt_truss",
    "run_truss",
    "fortran_programs",
    "build_fem_registry",
    "build_force_registry",
    "build_integrate_registry",
    "build_pipeline_registry",
    "build_windows_registry",
    "default_integrand",
    "make_problem",
    "reference_solution",
    "run_fem",
    "run_integrate",
    "run_jacobi_force",
    "run_jacobi_windows",
    "run_pipeline",
]
