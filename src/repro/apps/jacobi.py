"""Jacobi relaxation on a 2-D grid: the paper's data-parallel pattern.

Two implementations of the same solver exercise the two PISCES 2
communication styles:

* :func:`run_jacobi_windows` -- a master task owns the grid and hands
  *windows* on row blocks to worker tasks (section 8's partitioning
  pattern: the partitioning task forwards 32-byte window values, the
  array bytes move once, owner -> worker);
* :func:`run_jacobi_force` -- one task FORCESPLITs; members share the
  grid in SHARED COMMON, take rows by PRESCHED, and synchronize each
  sweep with a BARRIER (section 7's style).

Both charge virtual compute ticks per cell update, so elapsed virtual
times are comparable across configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config.configuration import ClusterSpec, Configuration
from ..core.task import TaskRegistry
from ..core.taskid import PARENT, SENDER
from ..core.vm import PiscesVM
from ..flex.machine import FlexMachine

#: Virtual ticks charged per cell update (five-point stencil).
TICKS_PER_CELL = 5


@dataclass
class JacobiResult:
    grid: np.ndarray
    sweeps: int
    elapsed: int
    residual: float
    stats_window_bytes: int
    vm: PiscesVM


def make_problem(n: int, seed: int = 0) -> np.ndarray:
    """An n x n grid with fixed hot boundary and cold interior."""
    g = np.zeros((n, n))
    g[0, :] = 100.0
    g[-1, :] = 100.0
    g[:, 0] = 100.0
    g[:, -1] = 100.0
    return g


def sweep_rows(grid: np.ndarray, new: np.ndarray, rows: range) -> None:
    """One Jacobi sweep over the given interior rows (vectorized)."""
    for i in rows:
        new[i, 1:-1] = 0.25 * (grid[i - 1, 1:-1] + grid[i + 1, 1:-1]
                               + grid[i, :-2] + grid[i, 2:])


def reference_solution(n: int, sweeps: int) -> np.ndarray:
    """Serial reference for correctness checks."""
    g = make_problem(n)
    new = g.copy()
    for _ in range(sweeps):
        sweep_rows(g, new, range(1, n - 1))
        g, new = new, g.copy()
    return g


# --------------------------------------------------------------- windows --

def build_windows_registry(n: int, sweeps: int, n_workers: int) -> TaskRegistry:
    reg = TaskRegistry()

    @reg.tasktype("JWORKER")
    def jworker(ctx, k):
        ctx.send(PARENT, "READY", k)
        for _ in range(sweeps):
            res = yield from ctx.accept("WIN")
            w = res.args[0]
            block = yield from ctx.window_read(w)   # rows with halo
            rows = block.shape[0]
            new = block.copy()
            sweep_rows(block, new, range(1, rows - 1))
            yield from ctx.compute((rows - 2) * (n - 2) * TICKS_PER_CELL)
            interior = w.shrink(rows=(1, rows - 1))
            yield from ctx.window_write(interior, new[1:-1, :])
            ctx.send(PARENT, "SWEPT", k)
        return None

    @reg.tasktype("JMASTER")
    def jmaster(ctx):
        grid = make_problem(n)
        full = ctx.export_array("G", grid)
        for k in range(n_workers):
            ctx.initiate("JWORKER", k, on=1 + (k % max(1, len(ctx.vm.clusters))))
        res = yield from ctx.accept("READY", count=n_workers)
        workers = {}
        for m in res.messages:
            workers[m.args[0]] = m.sender
        # Row-block partition of the interior, one halo row each side.
        interior = np.array_split(np.arange(1, n - 1), n_workers)
        for _ in range(sweeps):
            for k, rows in enumerate(interior):
                lo, hi = rows[0] - 1, rows[-1] + 2
                w = full.shrink(rows=(lo, hi))
                ctx.send(workers[k], "WIN", w)
            yield from ctx.accept("SWEPT", count=n_workers)
        resid = float(np.abs(np.diff(grid, axis=0)).mean())
        return grid, resid

    return reg


def run_jacobi_windows(n: int = 32, sweeps: int = 4, n_workers: int = 4,
                       config: Optional[Configuration] = None,
                       machine: Optional[FlexMachine] = None) -> JacobiResult:
    reg = build_windows_registry(n, sweeps, n_workers)
    if config is None:
        clusters = tuple(
            ClusterSpec(number=i, primary_pe=2 + i,
                        slots=max(2, n_workers))
            for i in range(1, 3))
        config = Configuration(clusters=clusters, name="jacobi-windows")
    vm = PiscesVM(config, registry=reg, machine=machine)
    r = vm.run("JMASTER")
    grid, resid = r.value
    return JacobiResult(grid=grid, sweeps=sweeps, elapsed=r.elapsed,
                        residual=resid,
                        stats_window_bytes=(r.stats.window_bytes_read
                                            + r.stats.window_bytes_written),
                        vm=vm)


# ----------------------------------------------------------------- force --

def build_force_registry(n: int, sweeps: int) -> TaskRegistry:
    reg = TaskRegistry()

    def region(m, _n, _sweeps):
        blk = m.common("GRID")
        g, new = blk.g, blk.new
        for s in range(_sweeps):
            for i in m.presched(range(1, _n - 1)):
                new[i, 1:-1] = 0.25 * (g[i - 1, 1:-1] + g[i + 1, 1:-1]
                                       + g[i, :-2] + g[i, 2:])
                yield from m.compute((_n - 2) * TICKS_PER_CELL)

            def copy_back():
                g[1:-1, 1:-1] = new[1:-1, 1:-1]

            yield from m.barrier(copy_back)
        return None

    @reg.tasktype("JFORCE", shared={"GRID": {}})
    def jforce(ctx, _n, _sweeps):
        # SHARED COMMON declared empty above and re-declared here because
        # the block shape depends on run arguments (FREE COMMON frees the
        # storage and makes the name declarable again).
        ctx.free_common("GRID")
        blk = ctx.declare_common(
            "GRID", {"g": ("f8", (_n, _n)), "new": ("f8", (_n, _n))})
        blk.g[...] = make_problem(_n)
        blk.new[...] = blk.g
        yield from ctx.forcesplit(region, _n, _sweeps)
        resid = float(np.abs(np.diff(blk.g, axis=0)).mean())
        return np.array(blk.g, copy=True), resid

    return reg


def run_jacobi_force(n: int = 32, sweeps: int = 4, force_pes: int = 3,
                     machine: Optional[FlexMachine] = None) -> JacobiResult:
    reg = build_force_registry(n, sweeps)
    secondary = tuple(range(4, 4 + force_pes))
    config = Configuration(
        clusters=(ClusterSpec(number=1, primary_pe=3, slots=2,
                              secondary_pes=secondary),),
        name=f"jacobi-force-{force_pes + 1}")
    vm = PiscesVM(config, registry=reg, machine=machine)
    r = vm.run("JFORCE", n, sweeps)
    grid, resid = r.value
    return JacobiResult(grid=grid, sweeps=sweeps, elapsed=r.elapsed,
                        residual=resid, stats_window_bytes=0, vm=vm)
