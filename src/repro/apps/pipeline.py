"""A task pipeline: dynamic topology built by taskid exchange (section 6).

"A typical PISCES 2 program begins with an initial phase in which the
first group of tasks are initiated, followed by an exchange of messages
containing taskid's to establish the communication topology."  This app
is that idiom distilled: a source, N filter stages and a sink are
initiated; the coordinator collects their HELLOs and wires each stage
to the next by sending it the downstream taskid; items then stream
through, each stage charging compute per item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config.configuration import ClusterSpec, Configuration
from ..core.task import TaskRegistry
from ..core.taskid import ANY, PARENT
from ..core.vm import PiscesVM
from ..flex.machine import FlexMachine

#: Ticks each stage charges per item (the pipeline's "work").
STAGE_COST = 50


@dataclass
class PipelineResult:
    outputs: List[int]
    elapsed: int
    stages: int
    items: int
    vm: PiscesVM


def build_pipeline_registry(n_stages: int, items: Sequence[int]) -> TaskRegistry:
    reg = TaskRegistry()

    @reg.tasktype("STAGE")
    def stage(ctx, index):
        ctx.send(PARENT, "HELLO", "STAGE", index)
        nxt = (yield from ctx.accept("NEXT")).args[0]
        while True:
            res = yield from ctx.accept("ITEM", "EOS", count=1)
            m = res.messages[0]
            if m.mtype == "EOS":
                ctx.send(nxt, "EOS")
                return index
            yield from ctx.compute(STAGE_COST)
            ctx.send(nxt, "ITEM", m.args[0] + 1)  # each stage increments

    @reg.tasktype("SINK")
    def sink(ctx):
        ctx.send(PARENT, "HELLO", "SINK", -1)
        got: List[int] = []
        while True:
            res = yield from ctx.accept("ITEM", "EOS", count=1)
            m = res.messages[0]
            if m.mtype == "EOS":
                ctx.send(PARENT, "RESULT", tuple(got))
                return got
            got.append(m.args[0])

    @reg.tasktype("COORD")
    def coord(ctx):
        # Phase 1: initiate everything, collect taskids.
        for i in range(n_stages):
            ctx.initiate("STAGE", i, on=ANY)
        ctx.initiate("SINK", on=ANY)
        res = yield from ctx.accept("HELLO", count=n_stages + 1)
        stages = {}
        sink_tid = None
        for m in res.messages:
            kind, idx = m.args
            if kind == "SINK":
                sink_tid = m.sender
            else:
                stages[idx] = m.sender
        # Phase 2: wire the topology back-to-front.
        chain = [stages[i] for i in range(n_stages)] + [sink_tid]
        for up, down in zip(chain[:-1], chain[1:]):
            ctx.send(up, "NEXT", down)
        # Phase 3: stream the items through stage 0.
        for x in items:
            ctx.send(chain[0], "ITEM", x)
        ctx.send(chain[0], "EOS")
        out = (yield from ctx.accept("RESULT")).args[0]
        return list(out)

    return reg


def run_pipeline(n_stages: int = 3, items: Optional[Sequence[int]] = None,
                 n_clusters: int = 2, slots: int = 4,
                 machine: Optional[FlexMachine] = None) -> PipelineResult:
    data = list(items) if items is not None else list(range(10))
    reg = build_pipeline_registry(n_stages, data)
    clusters = tuple(
        ClusterSpec(number=i, primary_pe=2 + i, slots=slots)
        for i in range(1, n_clusters + 1))
    config = Configuration(clusters=clusters, name="pipeline")
    vm = PiscesVM(config, registry=reg, machine=machine)
    r = vm.run("COORD")
    return PipelineResult(outputs=r.value, elapsed=r.elapsed,
                          stages=n_stages, items=len(data), vm=vm)
