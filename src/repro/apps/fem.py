"""A small finite-element structural-analysis kernel (section 14).

The paper's first planned application was "porting a large existing
finite element/structural analysis code to the FLEX within the PISCES 2
environment ... to 'parallelize' this code, using the Pisces Fortran
constructs, with a minimum of effort".  This module is that exercise in
miniature: an axially loaded elastic bar discretized into linear
elements, assembled into a (tridiagonal) stiffness system K u = f and
solved by conjugate gradients *inside a force* -- rows are PRESCHED-
partitioned, reductions go through a CRITICAL region into SHARED
COMMON scalars, and sweeps are separated by BARRIERs.  The structure is
exactly what a Fortran engineer would write with the section-7
constructs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config.configuration import ClusterSpec, Configuration
from ..core.task import TaskRegistry
from ..core.vm import PiscesVM
from ..flex.machine import FlexMachine

#: Ticks charged per matrix row processed in a matvec.
TICKS_PER_ROW = 2


@dataclass
class FEMProblem:
    """An axially loaded bar: n_elements linear elements, unit length."""

    n_elements: int
    youngs_modulus: float = 1.0e3
    area: float = 1.0
    length: float = 1.0
    load: float = 10.0           # end load at the free tip

    @property
    def n_free(self) -> int:
        """Free DOF count (node 0 is clamped)."""
        return self.n_elements

    def stiffness(self) -> np.ndarray:
        """Assembled global stiffness on the free DOFs (tridiagonal)."""
        k = self.youngs_modulus * self.area * self.n_elements / self.length
        n = self.n_free
        K = np.zeros((n, n))
        for e in range(self.n_elements):
            # element e couples nodes e and e+1; free DOF i = node i+1.
            i, j = e - 1, e
            if i >= 0:
                K[i, i] += k
                K[i, j] -= k
                K[j, i] -= k
            K[j, j] += k
        return K

    def load_vector(self) -> np.ndarray:
        f = np.zeros(self.n_free)
        f[-1] = self.load
        return f

    def exact_tip_displacement(self) -> float:
        """u(L) = P L / (E A) for a uniform bar under end load."""
        return self.load * self.length / (self.youngs_modulus * self.area)


@dataclass
class FEMResult:
    displacements: np.ndarray
    tip_displacement: float
    iterations: int
    elapsed: int
    residual: float
    vm: PiscesVM


def build_fem_registry(problem: FEMProblem, tol: float = 1e-10,
                       max_iter: Optional[int] = None) -> TaskRegistry:
    reg = TaskRegistry()
    n = problem.n_free
    iters_cap = max_iter if max_iter is not None else 2 * n + 10

    def cg_region(m, K, f):
        blk = m.common("CG")
        u, r, p, Ap = blk.u, blk.r, blk.p, blk.Ap
        rows = list(m.presched(range(n)))

        def matvec():
            for i in rows:
                Ap[i] = K[i] @ p
            yield from m.compute(len(rows) * TICKS_PER_ROW)

        def partial_dot(a, b):
            local = float(a[rows] @ b[rows]) if rows else 0.0
            with (yield from m.critical("RED")):
                blk.acc[()] += local

        # r = f - K u (u starts at 0), p = r.
        def init_block():
            u[...] = 0.0
            r[...] = f
            p[...] = r
            blk.rr[()] = float(r @ r)
            blk.done[()] = 0
            blk.iters[()] = 0

        yield from m.barrier(init_block)
        while True:
            if blk.done[()]:
                break
            yield from matvec()

            def zero_acc():
                blk.acc[()] = 0.0

            yield from m.barrier(zero_acc)
            yield from partial_dot(p, Ap)

            def alpha_step():
                pAp = float(blk.acc[()])
                blk.alpha[()] = blk.rr[()] / pAp if pAp else 0.0

            yield from m.barrier(alpha_step)
            alpha = float(blk.alpha[()])
            for i in rows:
                u[i] += alpha * p[i]
                r[i] -= alpha * Ap[i]
            yield from m.compute(len(rows))

            def zero_acc2():
                blk.acc[()] = 0.0

            yield from m.barrier(zero_acc2)
            yield from partial_dot(r, r)

            def beta_step():
                rr_new = float(blk.acc[()])
                blk.beta[()] = rr_new / blk.rr[()] if blk.rr[()] else 0.0
                blk.rr[()] = rr_new
                blk.iters[()] += 1
                if rr_new < tol * tol or blk.iters[()] >= iters_cap:
                    blk.done[()] = 1

            yield from m.barrier(beta_step)
            beta = float(blk.beta[()])
            for i in rows:
                p[i] = r[i] + beta * p[i]
            yield from m.compute(len(rows))
            yield from m.barrier()
        return None

    spec = {
        "u": ("f8", (n,)), "r": ("f8", (n,)), "p": ("f8", (n,)),
        "Ap": ("f8", (n,)), "acc": ("f8", ()), "alpha": ("f8", ()),
        "beta": ("f8", ()), "rr": ("f8", ()), "iters": ("i8", ()),
        "done": ("i8", ()),
    }

    @reg.tasktype("FEM", shared={"CG": spec}, locks=("RED",))
    def fem(ctx):
        K = problem.stiffness()
        f = problem.load_vector()
        yield from ctx.forcesplit(cg_region, K, f)
        blk = ctx.common("CG")
        u = np.array(blk.u, copy=True)
        resid = float(np.linalg.norm(K @ u - f))
        return u, int(blk.iters[()]), resid

    return reg


def run_fem(n_elements: int = 16, force_pes: int = 3,
            machine: Optional[FlexMachine] = None,
            problem: Optional[FEMProblem] = None) -> FEMResult:
    """Solve the bar problem with a force of ``force_pes + 1`` members."""
    prob = problem or FEMProblem(n_elements=n_elements)
    reg = build_fem_registry(prob)
    secondary = tuple(range(4, 4 + force_pes))
    config = Configuration(
        clusters=(ClusterSpec(number=1, primary_pe=3, slots=2,
                              secondary_pes=secondary),),
        name=f"fem-force-{force_pes + 1}")
    vm = PiscesVM(config, registry=reg, machine=machine)
    r = vm.run("FEM")
    u, iters, resid = r.value
    return FEMResult(displacements=u, tip_displacement=float(u[-1]),
                     iterations=iters, elapsed=r.elapsed, residual=resid,
                     vm=vm)
