"""A library of complete Pisces Fortran programs.

Ready-to-run sources exercising the section-10 language end to end --
useful as regression material for the preprocessor, as documentation by
example, and as starting points for porting exercises.  Each entry is a
(source, main task, description) triple; ``load(name)`` preprocesses
one, ``run(name, ...)`` executes it on a suitable configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..config.configuration import ClusterSpec, Configuration
from ..core.vm import PiscesVM, RunResult
from ..flex.machine import FlexMachine
from ..fortran import PiscesFortranProgram, preprocess

PI_BY_FORCE = """
C Midpoint-rule pi inside a force (PRESCHED + CRITICAL + BARRIER).
TASK MAIN
HANDLER ANSWER
ON CLUSTER 1 INITIATE PIFORCE(256)
ACCEPT 1 OF ANSWER
END TASK

HANDLER ANSWER(PI)
REAL PI
PRINT *, 'PI', PI
END HANDLER

TASK PIFORCE(N)
INTEGER N, I
REAL H, X
SHARED COMMON /ACC/ TOTAL
REAL TOTAL
LOCK L
H = 1.0 / N
FORCESPLIT
PRESCHED DO 10 I = 1, N
  X = H * (I - 0.5)
  COMPUTE 8
  CRITICAL L
    TOTAL = TOTAL + 4.0 / (1.0 + X * X)
  END CRITICAL
10 CONTINUE
BARRIER
  TO PARENT SEND ANSWER(TOTAL * H)
END BARRIER
END TASK
"""

MASTER_WORKER = """
C The canonical master/worker with taskid collection and DELAY guard.
TASK MAIN
INTEGER I, N
TASKID KIDS(8)
SIGNAL HELLO, DONE
PARAMETER (N = 6)
DO 10 I = 1, N
  ON ANY INITIATE WORKER(I)
10 CONTINUE
DO 20 I = 1, N
  ACCEPT 1 OF HELLO
  KIDS(I) = SENDER
20 CONTINUE
DO 30 I = 1, N
  TO KIDS(I) SEND GO(I * I)
30 CONTINUE
ACCEPT OF
  6 OF DONE
DELAY 2000000 THEN
  PRINT *, 'LOST WORKERS'
END ACCEPT
PRINT *, 'ALL', N, 'WORKERS DONE'
END TASK

TASK WORKER(K)
INTEGER K, PAYLOAD
SIGNAL GO
HANDLER WORKON
TO PARENT SEND HELLO(K)
ACCEPT 1 OF GO
COMPUTE 40 * K
TO PARENT SEND DONE(K)
END TASK

HANDLER WORKON(X)
INTEGER X
PRINT *, 'UNUSED', X
END HANDLER
"""

RING_TOKEN = """
C A token ring wired at run time from taskid messages (section 6).
C Handlers communicate with their task through SHARED COMMON -- the
C canonical Fortran pattern, since handler locals are private.
TASK MAIN
INTEGER I, N
TASKID NODES(8)
SHARED COMMON /LINK/ NXT, VAL
TASKID NXT
INTEGER VAL
SIGNAL HELLO
HANDLER TOKEN
PARAMETER (N = 4)
DO 10 I = 1, N
  ON ANY INITIATE NODE(I)
10 CONTINUE
DO 20 I = 1, N
  ACCEPT 1 OF HELLO
  NODES(I) = SENDER
20 CONTINUE
DO 30 I = 1, N - 1
  TO NODES(I) SEND NEXT(NODES(I + 1))
30 CONTINUE
TO NODES(N) SEND NEXT(SELFID)
TO NODES(1) SEND TOKEN(0)
ACCEPT 1 OF TOKEN
PRINT *, 'TOKEN CAME BACK AS', VAL
END TASK

TASK NODE(K)
INTEGER K
SHARED COMMON /LINK/ NXT, VAL
TASKID NXT
INTEGER VAL
HANDLER NEXT
HANDLER TOKEN
TO PARENT SEND HELLO(K)
ACCEPT 1 OF NEXT
ACCEPT 1 OF TOKEN
TO NXT SEND TOKEN(VAL + 1)
END TASK

HANDLER NEXT(T)
TASKID T
SHARED COMMON /LINK/ NXT, VAL
TASKID NXT
INTEGER VAL
NXT = T
END HANDLER

HANDLER TOKEN(V)
INTEGER V
SHARED COMMON /LINK/ NXT, VAL
TASKID NXT
INTEGER VAL
VAL = V
END HANDLER
"""

WINDOW_SUM = """
C Window built-ins: export, shrink, remote read between tasks.
TASK MAIN
REAL A(12)
INTEGER I
WINDOW W, HALF
SIGNAL HELLO, SUM
DO 10 I = 1, 12
  A(I) = I * 1.0
10 CONTINUE
CALL WEXPORT('DATA', A)
CALL WCREATE(W, 'DATA')
CALL WSHRINK(HALF, W, 1, 6)
ON SAME INITIATE READER
ACCEPT 1 OF HELLO
TO SENDER SEND WIN(HALF)
ACCEPT 1 OF SUM
PRINT *, 'DONE'
END TASK

TASK READER
HANDLER WIN
TO PARENT SEND HELLO
ACCEPT 1 OF WIN
END TASK

HANDLER WIN(W)
WINDOW W
REAL B(6)
REAL S
INTEGER I
CALL WREAD(B, W)
S = 0.0
DO 20 I = 1, 6
  S = S + B(I)
20 CONTINUE
PRINT *, 'HALFSUM', S
TO SENDER SEND SUM(S)
END HANDLER
"""

#: name -> (source, main task, description, needs_force)
PROGRAMS: Dict[str, Tuple[str, str, str, bool]] = {
    "pi_by_force": (PI_BY_FORCE, "MAIN",
                    "midpoint-rule pi with PRESCHED/CRITICAL/BARRIER",
                    True),
    "master_worker": (MASTER_WORKER, "MAIN",
                      "taskid collection, GO/DONE protocol, DELAY guard",
                      False),
    "ring_token": (RING_TOKEN, "MAIN",
                   "run-time ring topology from taskid messages", False),
    "window_sum": (WINDOW_SUM, "MAIN",
                   "window export/shrink/read between tasks", False),
}


@dataclass
class FortranRun:
    program: PiscesFortranProgram
    result: RunResult
    vm: PiscesVM


def names() -> list:
    return sorted(PROGRAMS)


def load(name: str) -> PiscesFortranProgram:
    """Preprocess one library program."""
    source, _, _, _ = PROGRAMS[name]
    return preprocess(source)


def default_configuration(name: str) -> Configuration:
    _, _, _, needs_force = PROGRAMS[name]
    if needs_force:
        return Configuration(clusters=(
            ClusterSpec(1, 3, 4, secondary_pes=(7, 8, 9)),),
            name=f"fortran-{name}")
    return Configuration(clusters=(ClusterSpec(1, 3, 4),
                                   ClusterSpec(2, 4, 4)),
                         name=f"fortran-{name}")


def run(name: str, machine: Optional[FlexMachine] = None,
        config: Optional[Configuration] = None) -> FortranRun:
    """Preprocess and execute a library program to completion."""
    source, main, _, _ = PROGRAMS[name]
    program = preprocess(source)
    cfg = config or default_configuration(name)
    vm = PiscesVM(cfg, registry=program.registry, machine=machine)
    result = vm.run(main)
    return FortranRun(program=program, result=result, vm=vm)
