"""2-D truss structural analysis inside a force (section 14, extended).

Where :mod:`repro.apps.fem` ports the paper's structural-analysis
application in one dimension, this module does the real thing in 2-D: a
pin-jointed planar truss (an N-panel Pratt bridge by default) with two
degrees of freedom per node, element stiffness assembly with direction
cosines, support conditions, and a force-parallel conjugate-gradient
solve -- rows PRESCHED-partitioned, reductions through a CRITICAL
region into SHARED COMMON, BARRIERs between CG phases.

Validation: the displacement field matches ``numpy.linalg.solve`` and
the mid-span deflection is negative (downward) under gravity loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config.configuration import ClusterSpec, Configuration
from ..core.task import TaskRegistry
from ..core.vm import PiscesVM
from ..flex.machine import FlexMachine

#: Ticks charged per stiffness row in a matvec.
TICKS_PER_ROW = 2


@dataclass
class TrussProblem:
    """A pin-jointed planar truss."""

    nodes: List[Tuple[float, float]]
    #: (node_i, node_j, E*A) per bar.
    elements: List[Tuple[int, int, float]]
    #: Fully fixed node indices (both dofs).
    supports: List[int]
    #: node -> (fx, fy) applied load.
    loads: Dict[int, Tuple[float, float]] = field(default_factory=dict)

    @property
    def n_dof(self) -> int:
        return 2 * len(self.nodes)

    def free_dofs(self) -> List[int]:
        fixed = set()
        for n in self.supports:
            fixed.update((2 * n, 2 * n + 1))
        return [d for d in range(self.n_dof) if d not in fixed]

    # ------------------------------------------------------------ assembly --

    def stiffness(self) -> np.ndarray:
        """Global stiffness matrix over all dofs."""
        K = np.zeros((self.n_dof, self.n_dof))
        for i, j, ea in self.elements:
            xi, yi = self.nodes[i]
            xj, yj = self.nodes[j]
            dx, dy = xj - xi, yj - yi
            L = float(np.hypot(dx, dy))
            if L == 0:
                raise ValueError(f"zero-length element {i}-{j}")
            c, s = dx / L, dy / L
            k = ea / L
            ke = k * np.array([[c * c, c * s], [c * s, s * s]])
            dofs_i = (2 * i, 2 * i + 1)
            dofs_j = (2 * j, 2 * j + 1)
            for a in range(2):
                for b in range(2):
                    K[dofs_i[a], dofs_i[b]] += ke[a, b]
                    K[dofs_j[a], dofs_j[b]] += ke[a, b]
                    K[dofs_i[a], dofs_j[b]] -= ke[a, b]
                    K[dofs_j[a], dofs_i[b]] -= ke[a, b]
        return K

    def reduced_system(self) -> Tuple[np.ndarray, np.ndarray, List[int]]:
        """(K_ff, f_f, free dof list) after applying supports."""
        free = self.free_dofs()
        K = self.stiffness()
        f = np.zeros(self.n_dof)
        for n, (fx, fy) in self.loads.items():
            f[2 * n] += fx
            f[2 * n + 1] += fy
        idx = np.ix_(free, free)
        return K[idx], f[free], free

    def direct_solution(self) -> np.ndarray:
        """Full-dof displacement vector via numpy (the reference)."""
        Kff, ff, free = self.reduced_system()
        u = np.zeros(self.n_dof)
        u[free] = np.linalg.solve(Kff, ff)
        return u


def pratt_truss(n_panels: int = 4, panel: float = 2.0, height: float = 2.0,
                ea: float = 1.0e4, load_per_node: float = -5.0
                ) -> TrussProblem:
    """An N-panel Pratt bridge truss, pinned at both bottom ends,
    loaded downward at the bottom chord joints."""
    if n_panels < 2:
        raise ValueError("need at least 2 panels")
    bottom = [(i * panel, 0.0) for i in range(n_panels + 1)]
    top = [(i * panel, height) for i in range(1, n_panels)]
    nodes = bottom + top
    t = lambda i: n_panels + 1 + (i - 1)    # top node index for column i
    elements: List[Tuple[int, int, float]] = []
    for i in range(n_panels):               # bottom chord
        elements.append((i, i + 1, ea))
    for i in range(1, n_panels - 1):         # top chord
        elements.append((t(i), t(i + 1), ea))
    for i in range(1, n_panels):             # verticals
        elements.append((i, t(i), ea))
    elements.append((0, t(1), ea))           # end diagonals
    elements.append((n_panels, t(n_panels - 1), ea))
    for i in range(1, n_panels - 1):          # interior diagonals
        elements.append((t(i), i + 1, ea))
    loads = {i: (0.0, load_per_node) for i in range(1, n_panels)}
    return TrussProblem(nodes=nodes, elements=elements,
                        supports=[0, n_panels], loads=loads)


@dataclass
class TrussResult:
    displacements: np.ndarray      # full dof vector
    midspan_deflection: float
    iterations: int
    elapsed: int
    residual: float
    vm: PiscesVM


def build_truss_registry(problem: TrussProblem, tol: float = 1e-9,
                         max_iter: Optional[int] = None) -> TaskRegistry:
    reg = TaskRegistry()
    Kff, ff, free = problem.reduced_system()
    n = len(free)
    iters_cap = max_iter if max_iter is not None else 3 * n + 20

    def cg_region(m):
        blk = m.common("CG")
        u, r, p, Ap = blk.u, blk.r, blk.p, blk.Ap
        rows = list(m.presched(range(n)))

        def init_block():
            u[...] = 0.0
            r[...] = ff
            p[...] = r
            blk.rr[()] = float(r @ r)
            blk.done[()] = 0
            blk.iters[()] = 0

        yield from m.barrier(init_block)
        while not blk.done[()]:
            for i in rows:
                Ap[i] = Kff[i] @ p
            yield from m.compute(len(rows) * TICKS_PER_ROW)

            def zero_acc():
                blk.acc[()] = 0.0

            yield from m.barrier(zero_acc)
            local = float(p[rows] @ Ap[rows]) if rows else 0.0
            with (yield from m.critical("RED")):
                blk.acc[()] += local

            def alpha_step():
                pAp = float(blk.acc[()])
                blk.alpha[()] = blk.rr[()] / pAp if pAp else 0.0
                blk.acc[()] = 0.0

            yield from m.barrier(alpha_step)
            alpha = float(blk.alpha[()])
            for i in rows:
                u[i] += alpha * p[i]
                r[i] -= alpha * Ap[i]
            yield from m.compute(len(rows))
            yield from m.barrier()
            local = float(r[rows] @ r[rows]) if rows else 0.0
            with (yield from m.critical("RED")):
                blk.acc[()] += local

            def beta_step():
                rr_new = float(blk.acc[()])
                blk.beta[()] = rr_new / blk.rr[()] if blk.rr[()] else 0.0
                blk.rr[()] = rr_new
                blk.iters[()] += 1
                if rr_new < tol * tol or blk.iters[()] >= iters_cap:
                    blk.done[()] = 1

            yield from m.barrier(beta_step)
            beta = float(blk.beta[()])
            for i in rows:
                p[i] = r[i] + beta * p[i]
            yield from m.compute(len(rows))
            yield from m.barrier()
        return None

    spec = {
        "u": ("f8", (n,)), "r": ("f8", (n,)), "p": ("f8", (n,)),
        "Ap": ("f8", (n,)), "acc": ("f8", ()), "alpha": ("f8", ()),
        "beta": ("f8", ()), "rr": ("f8", ()), "iters": ("i8", ()),
        "done": ("i8", ()),
    }

    @reg.tasktype("TRUSS", shared={"CG": spec}, locks=("RED",))
    def truss(ctx):
        yield from ctx.forcesplit(cg_region)
        blk = ctx.common("CG")
        uf = np.array(blk.u, copy=True)
        resid = float(np.linalg.norm(Kff @ uf - ff))
        return uf, int(blk.iters[()]), resid

    return reg


def run_truss(n_panels: int = 4, force_pes: int = 3,
              machine: Optional[FlexMachine] = None,
              problem: Optional[TrussProblem] = None) -> TrussResult:
    """Solve a truss with a force of ``force_pes + 1`` members."""
    prob = problem or pratt_truss(n_panels=n_panels)
    reg = build_truss_registry(prob)
    secondary = tuple(range(4, 4 + force_pes))
    cfg = Configuration(
        clusters=(ClusterSpec(1, 3, 2, secondary_pes=secondary),),
        name=f"truss-force-{force_pes + 1}")
    vm = PiscesVM(cfg, registry=reg, machine=machine)
    r = vm.run("TRUSS")
    uf, iters, resid = r.value
    _, _, free = prob.reduced_system()
    u = np.zeros(prob.n_dof)
    u[free] = uf
    mid_node = (len([nd for nd in prob.nodes if nd[1] == 0.0]) - 1) // 2
    return TrussResult(displacements=u,
                       midspan_deflection=float(u[2 * mid_node + 1]),
                       iterations=iters, elapsed=r.elapsed,
                       residual=resid, vm=vm)
