"""Fault-tolerant Jacobi relaxation: the recovery demonstration app.

The windows/force Jacobi solvers in :mod:`repro.apps.jacobi` assume the
transport never loses a message and no worker ever dies; this variant is
written against the failure semantics of :mod:`repro.faults` instead:

* the master ships row blocks *by message* and gathers results tagged
  with ``(sweep, chunk)``, so duplicated or replayed replies are
  idempotent and corrupted ones (discarded at ACCEPT by their checksum)
  simply look like drops;
* every gather waits with a bounded DELAY and re-sends whatever is
  still missing, so dropped requests or replies heal;
* workers announce themselves with ``READY <k>`` -- at startup *and*
  whenever they have been idle a while -- so a worker restarted by
  RESTART supervision (or a re-registration lost to the fault plan)
  re-joins the computation;
* the master ACCEPTs the system ``TASK_DIED`` notification alongside
  its data traffic: under ``on_death="reassign"`` a dead worker's chunk
  moves to a survivor, under ``on_death="abort"`` the run stops cleanly
  and reports the reason.

The numerics are bit-identical to :func:`repro.apps.jacobi.reference_solution`
no matter which worker computes which chunk or how often a chunk is
recomputed -- every sweep is assembled from the immutable previous grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config.configuration import ClusterSpec, Configuration
from ..core.accept import ALL_RECEIVED
from ..core.supervision import Supervision
from ..core.task import TaskRegistry
from ..core.taskid import ANY, PARENT
from ..core.vm import PiscesVM
from ..flex.machine import FlexMachine
from .jacobi import TICKS_PER_CELL, make_problem, sweep_rows

#: A worker exits after this many consecutive idle timeouts (the escape
#: hatch that keeps restarted workers from outliving a finished master).
MAX_IDLE_TIMEOUTS = 2


@dataclass
class ChaosJacobiResult:
    grid: Optional[np.ndarray]
    completed: bool
    reason: str
    sweeps: int
    rounds: int          # gather iterations (re-sends show up here)
    elapsed: int
    vm: PiscesVM


def build_chaos_registry(n: int, sweeps: int, n_workers: int,
                         supervision: Optional[Supervision],
                         on_death: str, resend_delay: int,
                         idle_timeout: int,
                         max_rounds: int) -> TaskRegistry:
    reg = TaskRegistry()

    @reg.tasktype("CWORKER")
    def cworker(ctx, k):
        ctx.send(PARENT, "READY", k)
        idle = 0
        while True:
            res = yield from ctx.accept("ROWS", "STOP", count=1,
                                        delay=idle_timeout, timeout_ok=True)
            if res.timed_out:
                idle += 1
                if idle >= MAX_IDLE_TIMEOUTS:
                    return None          # orphaned: master is done/gone
                ctx.send(PARENT, "READY", k)   # heal a lost registration
                continue
            idle = 0
            m = res.messages[0]
            if m.mtype == "STOP":
                return None
            s, chunk, block = m.args
            rows, cols = block.shape
            new = block.copy()
            sweep_rows(block, new, range(1, rows - 1))
            yield from ctx.compute((rows - 2) * (cols - 2) * TICKS_PER_CELL)
            ctx.send(PARENT, "SWEPT", s, chunk, new[1:-1, :])

    @reg.tasktype("CMASTER")
    def cmaster(ctx):
        g = make_problem(n)
        chunks = np.array_split(np.arange(1, n - 1), n_workers)
        for k in range(n_workers):
            ctx.initiate("CWORKER", k, on=ANY, supervision=supervision)
        workers: dict = {}     # announced index -> current taskid
        dead: set = set()      # taskids reported dead by TASK_DIED
        rounds = 0

        def target_for(c):
            t = workers.get(c)
            if t is not None and t not in dead:
                return t
            for k in sorted(workers):
                if workers[k] not in dead:
                    return workers[k]
            return None

        def stop_all():
            for k in sorted(workers):
                if workers[k] not in dead:
                    ctx.send(workers[k], "STOP")

        for s in range(sweeps):
            newg = g.copy()
            pending = set(range(n_workers))
            need_send = set(pending)
            while pending:
                rounds += 1
                if rounds > max_rounds:
                    stop_all()
                    return None, f"no progress after {max_rounds} rounds", rounds
                for c in sorted(need_send):
                    tgt = target_for(c)
                    if tgt is None:
                        continue     # nobody announced yet; wait below
                    rows = chunks[c]
                    lo, hi = rows[0] - 1, rows[-1] + 2
                    ctx.send(tgt, "ROWS", s, c, g[lo:hi, :].copy())
                need_send.clear()
                res = yield from ctx.accept(
                    ("SWEPT", 1), ("READY", ALL_RECEIVED),
                    ("TASK_DIED", ALL_RECEIVED),
                    delay=resend_delay, timeout_ok=True)
                for m in res.messages:
                    if m.mtype == "SWEPT":
                        ms, mc, data = m.args
                        if ms == s and mc in pending:
                            pending.discard(mc)
                            rows = chunks[mc]
                            newg[rows[0]:rows[-1] + 1, :] = data
                    elif m.mtype == "READY":
                        workers[m.args[0]] = m.sender
                        dead.discard(m.sender)
                        need_send |= pending
                    elif m.mtype == "TASK_DIED":
                        tid, why = m.args
                        dead.add(tid)
                        if on_death == "abort":
                            stop_all()
                            return (None, f"worker {tid} died: {why}",
                                    rounds)
                        need_send |= pending
                if res.timed_out:
                    need_send |= pending   # replies lost; re-send
            g = newg
        stop_all()
        return g, "", rounds

    return reg


def run_chaos_jacobi(n: int = 20, sweeps: int = 3, n_workers: int = 3,
                     supervision: Optional[Supervision] = None,
                     on_death: str = "abort",
                     resend_delay: int = 8_000,
                     idle_timeout: int = 60_000,
                     max_rounds: int = 200,
                     config: Optional[Configuration] = None,
                     machine: Optional[FlexMachine] = None,
                     fault_plan=None) -> ChaosJacobiResult:
    """Run the fault-tolerant Jacobi solver (optionally under a plan).

    ``fault_plan`` takes an explicit :class:`~repro.faults.FaultPlan`;
    alternatively wrap the call in :func:`repro.faults.plan_scope`.
    """
    if on_death not in ("abort", "reassign"):
        raise ValueError(f"on_death must be abort|reassign, not {on_death!r}")
    reg = build_chaos_registry(n, sweeps, n_workers, supervision, on_death,
                               resend_delay, idle_timeout, max_rounds)
    if config is None:
        clusters = tuple(
            ClusterSpec(number=i, primary_pe=2 + i,
                        slots=max(2, n_workers) + 1)
            for i in range(1, 3))
        config = Configuration(clusters=clusters, name="chaos-jacobi")
    vm = PiscesVM(config, registry=reg, machine=machine,
                  fault_plan=fault_plan)
    r = vm.run("CMASTER")
    grid, reason, rounds = r.value
    return ChaosJacobiResult(grid=grid, completed=grid is not None,
                             reason=reason, sweeps=sweeps, rounds=rounds,
                             elapsed=r.elapsed, vm=vm)
