"""Master/worker numerical integration with dynamic load distribution.

The task-level analogue of SELFSCHED: a master task owns a bag of
subintervals; workers request the "next" piece when idle, so expensive
regions of the integrand do not serialize behind a static partition.
Used by the messaging ablation and as the third example application.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..config.configuration import ClusterSpec, Configuration
from ..core.task import TaskRegistry
from ..core.taskid import ANY, PARENT
from ..core.vm import PiscesVM
from ..flex.machine import FlexMachine

#: Ticks charged per function evaluation.
TICKS_PER_EVAL = 3


@dataclass
class IntegrateResult:
    value: float
    exact: float
    pieces: int
    elapsed: int
    per_worker: dict
    vm: PiscesVM


def default_integrand(x: float) -> float:
    """A lumpy integrand: cheap on the left, oscillatory on the right."""
    return math.sin(x) + 0.5 * math.sin(10 * x * x)


def build_integrate_registry(f: Callable[[float], float], a: float, b: float,
                             pieces: int, points_per_piece: int,
                             n_workers: int) -> TaskRegistry:
    reg = TaskRegistry()
    h = (b - a) / pieces

    @reg.tasktype("IWORKER")
    def iworker(ctx, k):
        ctx.send(PARENT, "IDLE", k, False, 0.0)
        done = 0
        while True:
            res = yield from ctx.accept("PIECE", "STOP", count=1)
            m = res.messages[0]
            if m.mtype == "STOP":
                return done
            (i,) = m.args
            lo = a + i * h
            # Composite trapezoid on the piece; cost scales with evals.
            npts = points_per_piece * (1 + i % 3)   # skewed work
            xs = [lo + h * j / npts for j in range(npts + 1)]
            s = 0.5 * (f(xs[0]) + f(xs[-1])) + sum(f(x) for x in xs[1:-1])
            yield from ctx.compute(npts * TICKS_PER_EVAL)
            done += 1
            ctx.send(PARENT, "IDLE", k, True, s * h / npts)

    @reg.tasktype("IMASTER")
    def imaster(ctx):
        for k in range(n_workers):
            ctx.initiate("IWORKER", k, on=ANY)
        total = 0.0
        next_piece = 0
        completed = 0
        idle_seen = 0
        workers = {}
        per_worker = {k: 0 for k in range(n_workers)}
        # Every worker sends one initial IDLE plus one per completed
        # piece, so the master accepts exactly n_workers + pieces IDLEs.
        while completed < pieces or idle_seen < n_workers + pieces:
            res = yield from ctx.accept("IDLE")
            idle_seen += 1
            k, has_result, partial = res.args
            workers[k] = res.sender
            if has_result:
                total += partial
                completed += 1
                per_worker[k] += 1
            if next_piece < pieces:
                ctx.send(res.sender, "PIECE", next_piece)
                next_piece += 1
        for k, tid in workers.items():
            ctx.send(tid, "STOP")
        return total, per_worker

    return reg


def run_integrate(pieces: int = 24, points_per_piece: int = 8,
                  n_workers: int = 4, n_clusters: int = 2,
                  f: Callable[[float], float] = default_integrand,
                  a: float = 0.0, b: float = 3.0,
                  machine: Optional[FlexMachine] = None) -> IntegrateResult:
    reg = build_integrate_registry(f, a, b, pieces, points_per_piece,
                                   n_workers)
    clusters = tuple(
        ClusterSpec(number=i, primary_pe=2 + i, slots=max(2, n_workers))
        for i in range(1, n_clusters + 1))
    config = Configuration(clusters=clusters, name="integrate")
    vm = PiscesVM(config, registry=reg, machine=machine)
    r = vm.run("IMASTER")
    total, per_worker = r.value
    exact = _reference(f, a, b)
    return IntegrateResult(value=total, exact=exact, pieces=pieces,
                           elapsed=r.elapsed, per_worker=per_worker, vm=vm)


def _reference(f: Callable[[float], float], a: float, b: float,
               n: int = 20000) -> float:
    h = (b - a) / n
    s = 0.5 * (f(a) + f(b)) + sum(f(a + i * h) for i in range(1, n))
    return s * h
