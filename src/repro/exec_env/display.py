"""Display renderers for the execution environment (section 11).

These produce the text the monitor's display options show: running
tasks, message queues, PE loading, the full system-state dump -- and
the Figure 1 virtual-machine-organization diagram, rendered from the
*live* VM so the figure benchmark regenerates the paper's figure from
an actual configured machine.
"""

from __future__ import annotations

from typing import List

from ..core.vm import PiscesVM
from ..core.taskid import TaskId
from ..util.tables import format_table


def render_running_tasks(vm: PiscesVM) -> str:
    """DISPLAY RUNNING TASKS."""
    rows = []
    for num, cr in sorted(vm.clusters.items()):
        for slot in cr.slots:
            t = slot.task
            if t is not None:
                rows.append([str(t.tid), t.ttype.name, str(t.parent),
                             cr.primary_pe, len(t.inq),
                             "force" if t.force else "task"])
    if not rows:
        return "no user tasks running"
    return format_table(
        ["taskid", "type", "parent", "pe", "queued", "mode"], rows,
        title="RUNNING TASKS")


def render_message_queue(vm: PiscesVM, tid: TaskId) -> str:
    """DISPLAY MESSAGE QUEUE for one task."""
    task = vm.find_task(tid)
    return task.inq.describe()


def render_pe_loading(vm: PiscesVM) -> str:
    """DISPLAY PE LOADING: per-PE utilization and occupancy."""
    rows = []
    elapsed = max(1, vm.machine.elapsed())
    for pe_num in vm.config.used_pes():
        clock = vm.machine.clocks[pe_num]
        roles = []
        live = 0
        for num, cr in sorted(vm.clusters.items()):
            if cr.primary_pe == pe_num:
                roles.append(f"primary c{num}")
                live += len(cr.running_tasks())
            if pe_num in cr.secondary_pes:
                roles.append(f"force c{num}")
        rows.append([pe_num, " ".join(roles), live, clock.busy_ticks,
                     f"{100 * clock.busy_ticks / elapsed:.1f}%"])
    return format_table(["pe", "role", "tasks", "busy_ticks", "util"],
                        rows, title="PE LOADING")


def render_system_dump(vm: PiscesVM) -> str:
    """DUMP SYSTEM STATE: clusters, slots, queues, memory, engine."""
    parts: List[str] = [
        "PISCES 2 SYSTEM STATE DUMP",
        f"virtual time: {vm.machine.elapsed()} ticks "
        f"({vm.engine.exec_core} core, {vm.engine.dispatcher} dispatcher)"]
    for num, cr in sorted(vm.clusters.items()):
        parts.append(cr.describe())
        for t in cr.running_tasks():
            parts.append("  " + t.describe())
    for tid, ctrl in sorted(vm.controllers.items()):
        parts.append(f"controller {ctrl.kind} {tid}: inq={len(ctrl.inq)}")
    if vm.file_controller is not None:
        parts.append(vm.file_controller.disks.describe())
    parts.append(vm.machine.memory_report())
    parts.append(vm.tracer.describe())
    parts.append(vm.metrics.describe())
    parts.append(vm.engine.state_dump())
    return "\n".join(parts)


def render_metrics(vm: PiscesVM) -> str:
    """DISPLAY METRICS: the live registry snapshot, plus headline
    derived figures (queue depths, latency, lock holds) when present."""
    reg = vm.metrics
    parts: List[str] = [reg.describe()]
    if not reg.enabled and not reg.families():
        parts.append("(enable with monitor.change_metric_options"
                     "(enable=True) or config metrics_enabled)")
        return "\n".join(parts)
    parts.append(reg.snapshot_text())
    headline = []
    lat = reg.histogram_merged("send_accept_latency_ticks")
    if lat is not None and lat.count:
        headline.append(f"send->accept latency: mean {lat.mean:.1f} ticks, "
                        f"p90 <= {lat.quantile(0.9):.0f}, max {lat.max}")
    depth = reg.histogram_merged("inqueue_depth")
    if depth is not None and depth.count:
        headline.append(f"in-queue depth at enqueue: mean {depth.mean:.1f}, "
                        f"max {depth.max}")
    hold = reg.histogram_merged("lock_hold_ticks")
    if hold is not None and hold.count:
        headline.append(f"lock hold: mean {hold.mean:.1f} ticks, "
                        f"max {hold.max}")
    hits = reg.counter_total("window_cache_hits")
    misses = reg.counter_total("window_cache_misses")
    if hits or misses:
        moved = reg.counter_total("window_bytes_moved")
        rate = 100.0 * hits / (hits + misses)
        headline.append(f"window cache: {hits} hits / {misses} misses "
                        f"({rate:.0f}% hit rate), {moved} bytes moved")
    if headline:
        parts.append("")
        parts.extend(headline)
    return "\n".join(parts)


def render_races(vm: PiscesVM) -> str:
    """DETECT RACES: detector status plus every finding so far."""
    det = vm.race_detector
    if det is None:
        return ("race detection: off "
                "(enable with monitor.detect_races() or option 13; "
                "tasks initiated afterwards get tracked SHARED COMMON)")
    status = "on" if det.enabled else "paused"
    return f"race detection: {status} (mode {det.mode})\n" + det.report_text()


def render_profile(vm: PiscesVM) -> str:
    """PROFILE: causal profiler status plus the wait-state /
    utilization / critical-path panel collected so far."""
    prof = vm.profiler
    if prof is None:
        return ("profiling: off "
                "(enable with monitor.profile(True) or option 14; "
                "best done before initiating the tasks of interest)")
    from ..obs.profile import profile_report
    n = len(prof.slices())
    head = f"profiling: on ({n} slices recorded)"
    if not n:
        return head + "\n(no slices yet -- run or pump the machine first)"
    return head + "\n" + profile_report(prof)


def render_vm_figure(vm: PiscesVM) -> str:
    """Figure 1: PISCES 2 VIRTUAL MACHINE ORGANIZATION.

    Regenerates the paper's figure from the live VM: each cluster box
    shows its slots (controllers + user tasks / free slots), the
    intra-cluster network, and the message-passing network joining the
    clusters; the cluster hosting the terminal shows the user
    controller, and the file-controller cluster shows it with its disk.
    """
    lines: List[str] = ["PISCES 2 VIRTUAL MACHINE ORGANIZATION", ""]
    width = 46
    for num, cr in sorted(vm.clusters.items()):
        rows: List[str] = []
        rows.append(f"Slots | Task controller      <--+")
        uc = vm.user_controller
        if uc is not None and uc.cluster.number == num:
            rows.append(f"      | User controller      <--+ Intra-")
        fc = vm.file_controller
        if fc is not None and fc.cluster.number == num:
            rows.append(f"      | File controller [disk]<-+ cluster")
        for slot in cr.slots:
            occupant = (f"User task {slot.task.ttype.name}"
                        if slot.task is not None else "<not in use>")
            rows.append(f"      | {occupant:<21}<--+ network")
        head = f" CLUSTER {num}  (PE {cr.primary_pe}"
        if cr.secondary_pes:
            head += f", force PEs {','.join(map(str, cr.secondary_pes))}"
        head += ")"
        lines.append("+" + "-" * width + "+")
        lines.append("|" + head.ljust(width) + "|")
        lines.append("|" + " " * width + "|")
        for r in rows:
            lines.append("| " + r.ljust(width - 1) + "|")
        lines.append("+" + "-" * width + "+")
        lines.append("         |")
    if lines and lines[-1] == "         |":
        lines.pop()
    lines.append("")
    lines.append("   <=== Message-passing network (all clusters) ===>")
    return "\n".join(lines)
