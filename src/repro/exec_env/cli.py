"""Interactive/scriptable front end to the execution-environment monitor.

Mirrors the paper's numbered menu: each line of input is a menu choice
followed by its parameters.  Like the configuration menu, input comes
from any iterator of lines and output goes to any sink, so whole
monitor sessions are unit-testable (and usable from a terminal via
``ExecutionCLI(vm, inputs=iter(sys.stdin), output=print)``).

Session grammar (one command per line)::

    0                       terminate the run
    1 TASKTYPE [cluster] [args...]      initiate (ints parsed, rest str)
    2 c.s.u                 kill task
    3 c.s.u TYPE [args...]  send a message
    4 c.s.u [TYPE]          delete messages
    5                       display running tasks
    6 c.s.u                 display message queue
    7                       dump system state
    8                       display PE loading
    9 [+EVENT ...] [-EVENT ...]   change trace options
    p                       pump (advance until idle)
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional

from ..core.vm import PiscesVM
from ..errors import PiscesError
from .monitor import Monitor


def _parse_arg(tok: str) -> Any:
    try:
        return int(tok)
    except ValueError:
        try:
            return float(tok)
        except ValueError:
            return tok


class ExecutionCLI:
    """Drive a :class:`Monitor` from a stream of command lines."""

    def __init__(self, vm: PiscesVM,
                 inputs: Optional[Iterable[str]] = None,
                 output: Optional[Callable[[str], None]] = None,
                 auto_pump: bool = True):
        self.monitor = Monitor(vm)
        self._in: Iterator[str] = iter(inputs) if inputs is not None else iter([])
        self._out = output or (lambda s: None)
        self.transcript: List[str] = []
        #: When set, the machine is pumped after every mutating command,
        #: so displays reflect the consequences immediately.
        self.auto_pump = auto_pump

    def _say(self, text: str) -> None:
        self.transcript.append(text)
        self._out(text)

    def run(self) -> None:
        """Process commands until input is exhausted or option 0."""
        self._say(self.monitor.menu_text())
        for raw in self._in:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            self.transcript.append("> " + line)
            try:
                if self._dispatch(line):
                    return
            except PiscesError as e:
                self._say(f"error: {e}")

    def _dispatch(self, line: str) -> bool:
        toks = line.split()
        op, rest = toks[0], toks[1:]
        m = self.monitor
        if op == "0":
            self._say(m.terminate_run())
            return True
        if op == "p":
            n = m.pump()
            self._say(f"pumped {n} slices, t={m.vm.machine.elapsed()}")
            return False
        if op == "1":
            if not rest:
                self._say("usage: 1 TASKTYPE [cluster] [args...]")
                return False
            name = rest[0]
            cluster = None
            args_toks = rest[1:]
            if args_toks and args_toks[0].isdigit():
                cluster = int(args_toks[0])
                args_toks = args_toks[1:]
            args = tuple(_parse_arg(t) for t in args_toks)
            req = m.initiate_task(name, *args, cluster=cluster)
            if self.auto_pump:
                m.pump()
            tid = m.vm.initiations.get(req)
            self._say(f"initiated {name}: {tid if tid else 'held for a slot'}")
        elif op == "2":
            self._say(m.kill_task(rest[0]))
            if self.auto_pump:
                m.pump()
        elif op == "3":
            args = tuple(_parse_arg(t) for t in rest[2:])
            self._say(m.send_message(rest[0], rest[1], *args))
            if self.auto_pump:
                m.pump()
        elif op == "4":
            mtype = rest[1] if len(rest) > 1 else None
            self._say(m.delete_messages(rest[0], mtype))
        elif op == "5":
            self._say(m.display_running_tasks())
        elif op == "6":
            self._say(m.display_message_queue(rest[0]))
        elif op == "7":
            self._say(m.dump_system_state())
        elif op == "8":
            self._say(m.display_pe_loading())
        elif op == "9":
            enable = tuple(t[1:] for t in rest if t.startswith("+"))
            disable = tuple(t[1:] for t in rest if t.startswith("-"))
            self._say(m.change_trace_options(enable=enable, disable=disable))
        elif op == "10":
            self._say(m.display_metrics())
        elif op == "11":
            enable = True if "on" in rest else False if "off" in rest else None
            self._say(m.change_metric_options(enable=enable,
                                              reset="reset" in rest))
        elif op == "12":
            self._say(m.export_trace(rest[0] if rest else "."))
        elif op == "13":
            # 13 [on|off] [record|warn|raise] -- default: on, keeping
            # the current mode (record on first enable).
            enable = False if "off" in rest else True
            mode = next((t for t in rest
                         if t in ("record", "warn", "raise")), None)
            self._say(m.detect_races(enable=enable, mode=mode))
        elif op == "14":
            # 14 [on|off] [export DIR] -- bare 14 is a status query.
            enable = True if "on" in rest else False if "off" in rest else None
            export_dir = None
            if "export" in rest:
                i = rest.index("export")
                export_dir = rest[i + 1] if i + 1 < len(rest) else "."
            self._say(m.profile(enable=enable, export_dir=export_dir))
        else:
            self._say(f"no such option {op!r}")
        return False
