"""Execution environment: the run-time monitor and its displays."""

from .cli import ExecutionCLI
from .display import (
    render_message_queue,
    render_pe_loading,
    render_running_tasks,
    render_system_dump,
    render_vm_figure,
)
from .monitor import MENU, Monitor

__all__ = [
    "ExecutionCLI",
    "MENU",
    "Monitor",
    "render_message_queue",
    "render_pe_loading",
    "render_running_tasks",
    "render_system_dump",
    "render_vm_figure",
]
