"""The PISCES execution environment monitor (section 11).

"...control transfers to the PISCES execution environment, a program
that runs on the 'main' MMOS PE.  This program displays a menu with the
options:

    0 TERMINATE THE RUN          5 DISPLAY RUNNING TASKS
    1 INITIATE A TASK            6 DISPLAY MESSAGE QUEUE
    2 KILL A TASK                7 DUMP SYSTEM STATE
    3 SEND A MESSAGE             8 DISPLAY PE LOADING
    4 DELETE MESSAGES            9 CHANGE TRACE OPTIONS"

:class:`Monitor` exposes each option as a method; the interactive CLI
(:mod:`repro.exec_env.cli`) maps the numbers onto them.  The monitor
acts *between* engine steps: operations inject work (initiate requests,
messages, kills) and :meth:`pump` / :meth:`run_to_idle` advance the
machine.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple, Union

from ..core.taskid import TaskId, USER_TERMINAL_ID
from ..core.tracing import TraceEventType
from ..core.vm import PiscesVM
from ..errors import PiscesError
from . import display

#: (number, label) pairs exactly as the paper lists them.
MENU = (
    (0, "TERMINATE THE RUN"),
    (1, "INITIATE A TASK"),
    (2, "KILL A TASK"),
    (3, "SEND A MESSAGE"),
    (4, "DELETE MESSAGES"),
    (5, "DISPLAY RUNNING TASKS"),
    (6, "DISPLAY MESSAGE QUEUE"),
    (7, "DUMP SYSTEM STATE"),
    (8, "DISPLAY PE LOADING"),
    (9, "CHANGE TRACE OPTIONS"),
)

#: Observability extensions beyond the paper's ten options (kept in a
#: separate tuple so MENU stays exactly as section 11 lists it).
EXTENDED_MENU = (
    (10, "DISPLAY METRICS"),
    (11, "CHANGE METRIC OPTIONS"),
    (12, "EXPORT TRACE"),
    (13, "DETECT RACES"),
    (14, "PROFILE"),
)


class Monitor:
    """Programmatic execution-environment monitor for one VM."""

    def __init__(self, vm: PiscesVM):
        self.vm = vm
        vm.boot()
        self.terminated = False

    # ------------------------------------------------------------ pumping --

    def pump(self, max_steps: int = 100_000,
             window: int = 10_000) -> int:
        """Advance the machine "now": run every slice that starts within
        ``window`` ticks of the current time, up to ``max_steps``.

        Long DELAY timeouts beyond the window do not fire -- the monitor
        is an interactive tool and must not fast-forward virtual time
        past the operator.  Returns the number of slices executed.
        """
        eng = self.vm.engine
        horizon = eng.now() + window
        n = 0
        while n < max_steps and eng.step(horizon=horizon):
            n += 1
        return n

    def run_to_idle(self) -> None:
        self.vm.run_to_idle()

    # ------------------------------------------------------- menu options --

    def terminate_run(self) -> str:
        """Option 0: TERMINATE THE RUN."""
        self.vm.shutdown()
        self.terminated = True
        return "run terminated"

    def initiate_task(self, tasktype: str, *args: Any,
                      cluster: Optional[int] = None) -> int:
        """Option 1: INITIATE A TASK (as the user at the terminal).

        Returns the request id; after :meth:`pump`, the started taskid
        is ``vm.initiations[req_id]``.
        """
        placement = cluster if cluster is not None else min(self.vm.clusters)
        return self.vm.request_initiate(tasktype, args,
                                        parent=USER_TERMINAL_ID,
                                        placement=placement)

    def kill_task(self, tid: Union[TaskId, str]) -> str:
        """Option 2: KILL A TASK."""
        tid = TaskId.parse(tid) if isinstance(tid, str) else tid
        ok = self.vm.kill_task(tid)
        return f"task {tid} {'killed' if ok else 'is not running'}"

    def send_message(self, tid: Union[TaskId, str], mtype: str,
                     *args: Any) -> str:
        """Option 3: SEND A MESSAGE (from the user terminal)."""
        tid = TaskId.parse(tid) if isinstance(tid, str) else tid
        n = self.vm.send_message(tid, mtype, args, origin=None)
        return f"sent {mtype} to {tid}" if n else f"{tid} unreachable"

    def delete_messages(self, tid: Union[TaskId, str],
                        mtype: Optional[str] = None) -> str:
        """Option 4: DELETE MESSAGES from a task's in-queue."""
        tid = TaskId.parse(tid) if isinstance(tid, str) else tid
        n = self.vm.delete_messages(tid, mtype)
        what = f"{mtype} messages" if mtype else "messages"
        return f"deleted {n} {what} from {tid}"

    def display_running_tasks(self) -> str:
        """Option 5: DISPLAY RUNNING TASKS."""
        return display.render_running_tasks(self.vm)

    def display_message_queue(self, tid: Union[TaskId, str]) -> str:
        """Option 6: DISPLAY MESSAGE QUEUE."""
        tid = TaskId.parse(tid) if isinstance(tid, str) else tid
        return display.render_message_queue(self.vm, tid)

    def dump_system_state(self) -> str:
        """Option 7: DUMP SYSTEM STATE."""
        return display.render_system_dump(self.vm)

    def display_pe_loading(self) -> str:
        """Option 8: DISPLAY PE LOADING."""
        return display.render_pe_loading(self.vm)

    def change_trace_options(self, enable: Tuple[str, ...] = (),
                             disable: Tuple[str, ...] = (),
                             solo_task: Optional[Union[TaskId, str]] = None,
                             mute_task: Optional[Union[TaskId, str]] = None,
                             ) -> str:
        """Option 9: CHANGE TRACE OPTIONS (per event type and per task)."""
        tr = self.vm.tracer
        for name in enable:
            tr.enable(TraceEventType(name))
        for name in disable:
            tr.disable(TraceEventType(name))
        if solo_task is not None:
            tid = TaskId.parse(solo_task) if isinstance(solo_task, str) else solo_task
            tr.solo_task(tid)
        if mute_task is not None:
            tid = TaskId.parse(mute_task) if isinstance(mute_task, str) else mute_task
            tr.mute_task(tid)
        return tr.describe()

    # ----------------------------------------------------------- extras ----
    # Observability options (EXTENDED_MENU): live metric inspection and
    # structured trace export, section-11 style but beyond the paper.

    def display_metrics(self) -> str:
        """Option 10: DISPLAY METRICS (live registry snapshot)."""
        return display.render_metrics(self.vm)

    def change_metric_options(self, enable: Optional[bool] = None,
                              reset: bool = False) -> str:
        """Option 11: CHANGE METRIC OPTIONS (turn collection on/off,
        optionally clearing already-collected instruments)."""
        if reset:
            self.vm.metrics.reset()
        if enable is True:
            self.vm.enable_metrics()
        elif enable is False:
            self.vm.disable_metrics()
        return self.vm.metrics.describe()

    def export_trace(self, directory: str, prefix: str = "run") -> str:
        """Option 12: EXPORT TRACE (JSONL events + Chrome trace +
        metrics snapshot to ``directory``)."""
        from ..obs.export import export_run
        paths = export_run(self.vm, directory, prefix=prefix)
        return "\n".join(f"wrote {kind}: {path}"
                         for kind, path in sorted(paths.items()))

    def detect_races(self, enable: Optional[bool] = None,
                     mode: Optional[str] = None) -> str:
        """Option 13: DETECT RACES (happens-before race detection).

        With no arguments this is a pure status query: it renders the
        current findings without changing any collection state (the
        extended-menu contract -- asking never mutates).
        ``enable=True`` turns the detector on -- best done before
        initiating the tasks under suspicion, since already-running
        tasks keep their untracked SHARED COMMON arrays.
        ``enable=False`` stops checking new accesses but keeps the
        evidence displayable.  ``mode=None`` keeps the current mode
        (``"record"`` on first enable).
        """
        vm = self.vm
        if enable:
            vm.enable_race_detection(mode=mode).enabled = True
        elif enable is False and vm.race_detector is not None:
            # Stop checking new accesses; evidence stays displayable.
            vm.race_detector.enabled = False
        elif enable is None and mode is not None \
                and vm.race_detector is not None:
            vm.race_detector.mode = mode
        return display.render_races(vm)

    def profile(self, enable: Optional[bool] = None,
                export_dir: Optional[str] = None) -> str:
        """Option 14: PROFILE (causal wait-state/critical-path profile).

        With no arguments this is a pure status query: it renders the
        profile collected so far (or the off-state hint) without
        changing any collection state.  ``enable=True`` turns the
        profiler on -- best done before the run, so every wait can be
        attributed.  ``export_dir`` also writes the flamegraph /
        Chrome-trace / critical-path bundle there.
        """
        vm = self.vm
        if enable:
            vm.enable_profiling()
        out = display.render_profile(vm)
        if export_dir is not None and vm.profiler is not None:
            from ..obs.profile import write_profile
            paths = write_profile(vm.profiler, export_dir)
            out += "\n" + "\n".join(f"wrote {kind}: {path}"
                                    for kind, path in sorted(paths.items()))
        return out

    def menu_text(self) -> str:
        return "\n".join(f"{n}   {label}"
                         for n, label in MENU + EXTENDED_MENU)
