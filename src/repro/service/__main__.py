"""``python -m repro.service``: boot the run service and serve HTTP.

    python -m repro.service --root /var/lib/pisces --port 8737 \
        --workers 4 --quota alice=2,8,16 --quota bob=1,4,8

On boot the service rescans its store, re-queues runs a previous life
left unfinished (checkpoint-resuming where possible) and prints one
JSON line ``{"url": ..., "root": ..., "recovered": [...]}`` to stdout
so wrappers (CI, the example driver) can discover the bound port.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from .admission import DEFAULT_QUOTA, TenantQuota
from .rest import ServiceHTTPServer, _Handler
from .service import RunService


def parse_quota(text: str) -> TenantQuota:
    """``max_running,max_queued,pe_budget`` -> TenantQuota."""
    try:
        mr, mq, pb = (int(x) for x in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"quota {text!r}: want MAX_RUNNING,MAX_QUEUED,PE_BUDGET")
    return TenantQuota(max_running=mr, max_queued=mq, pe_budget=pb)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Multi-tenant PISCES run service (REST control plane).")
    ap.add_argument("--root", required=True,
                    help="run-store directory (created if missing)")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=0,
                    help="0 binds an ephemeral port (printed on stdout)")
    ap.add_argument("--workers", type=int, default=4,
                    help="concurrent run executors (default 4)")
    ap.add_argument("--quota", action="append", default=[],
                    metavar="TENANT=R,Q,P",
                    help="per-tenant quota: max_running,max_queued,"
                         "pe_budget (repeatable)")
    ap.add_argument("--default-quota", type=parse_quota,
                    default=DEFAULT_QUOTA, metavar="R,Q,P")
    ap.add_argument("--quantum", type=int, default=8,
                    help="fair-share DRR quantum in PEs (default 8)")
    ap.add_argument("--exec-core", default="",
                    choices=("", "threaded", "coop"),
                    help="default execution core for submitted runs")
    ap.add_argument("--window-path", default="",
                    choices=("", "fast", "batched", "reference"))
    ap.add_argument("--task-bodies", default="",
                    choices=("", "auto", "callable"))
    ap.add_argument("--log-requests", action="store_true")
    args = ap.parse_args(argv)

    quotas = {}
    for entry in args.quota:
        tenant, _, spec = entry.partition("=")
        if not tenant or not spec:
            ap.error(f"--quota {entry!r}: want TENANT=R,Q,P")
        quotas[tenant] = parse_quota(spec)

    defaults = {k: v for k, v in (("exec_core", args.exec_core),
                                  ("window_path", args.window_path),
                                  ("task_bodies", args.task_bodies)) if v}
    service = RunService(args.root, n_workers=args.workers, quotas=quotas,
                         default_quota=args.default_quota,
                         defaults=defaults, quantum=args.quantum)
    service.start()
    _Handler.log_to_stderr = args.log_requests
    server = ServiceHTTPServer(service, host=args.host, port=args.port)

    print(json.dumps({"url": server.url, "root": str(service.root),
                      "recovered": [r.run_id for r in service.recovered]}),
          flush=True)

    def _stop(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        service.stop(timeout=10.0, kill_live=False)
    return 0


if __name__ == "__main__":
    sys.exit(main())
