"""The persistent run store: one directory per run, JSON as truth.

Layout under the store root::

    runs/
      r000001/
        record.json          <- the run record (atomic writes)
        checkpoints/         <- periodic .pckpt bundles (if enabled)
        artifacts/           <- export_run bundle, trace JSONL, races,
                                fault events, .psched ... written at exit

The **record** is the run's state machine:

    QUEUED -> ADMITTED -> RUNNING -> DONE | FAILED | KILLED

Only the service process writes records; everything is written
atomically (tmp file + ``os.replace``) so a ``kill -9`` can never leave
a half-written record -- the worst case is a record one transition
stale, which the boot rescan repairs.

**Crash safety** is the store's defining feature: :meth:`recover`
walks every run directory at boot; any run found QUEUED/ADMITTED/
RUNNING belongs to a previous life of the service and is re-queued
with ``recovered`` incremented.  Runs that were checkpointing also
keep their ``checkpoints/`` directory, so the executor can resume from
``find_latest_checkpoint`` instead of starting over.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import ServiceError, UnknownRun
from .spec import RunSpec

QUEUED = "QUEUED"
ADMITTED = "ADMITTED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
KILLED = "KILLED"

#: States a run can still move out of.
LIVE_STATES = (QUEUED, ADMITTED, RUNNING)
TERMINAL_STATES = (DONE, FAILED, KILLED)

_TRANSITIONS = {
    QUEUED: (ADMITTED, KILLED),
    ADMITTED: (RUNNING, QUEUED, KILLED),
    RUNNING: (DONE, FAILED, KILLED),
    DONE: (), FAILED: (), KILLED: (),
}


@dataclass(frozen=True)
class RunRecord:
    """One run's persistent record (the JSON in ``record.json``)."""

    run_id: str
    tenant: str
    spec: RunSpec
    state: str = QUEUED
    #: Store-wide submission sequence number (fair-share tie-break and
    #: FIFO order within a tenant survive restarts through this).
    seq: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: How many service lives this run was interrupted by (0 = never).
    recovered: int = 0
    #: Checkpoint bundle name the current/last execution resumed from.
    resumed_from: Optional[str] = None
    #: Exit information, filled at the terminal transition: ``outcome``
    #: mirrors the state; ``elapsed_ticks`` is the virtual time (the
    #: determinism contract's observable); ``value`` is a repr snippet;
    #: ``error`` the exception text for FAILED.
    exit: Dict[str, Any] = field(default_factory=dict)
    #: Archived artifact filenames (relative to ``artifacts/``).
    artifacts: List[str] = field(default_factory=list)
    #: Execution provenance mirrored from the run manifest so the
    #: record alone identifies the reproduction axes (includes the
    #: ``task_bodies`` axis -- see obs/export.py).
    provenance: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        d = dict(self.__dict__)
        d["spec"] = self.spec.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunRecord":
        d = dict(d)
        d["spec"] = RunSpec.from_dict(d["spec"])
        return cls(**d)

    @property
    def is_live(self) -> bool:
        return self.state in LIVE_STATES


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


class RunStore:
    """On-disk run store.  All mutation goes through :meth:`transition`
    / :meth:`amend` under one lock; reads return immutable records."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._cache: Dict[str, RunRecord] = {}
        self._next_seq = 1
        self._load_all()

    # ------------------------------------------------------------ paths --

    def run_dir(self, run_id: str) -> Path:
        return self.runs_dir / run_id

    def record_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "record.json"

    def checkpoint_dir(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "checkpoints"

    def artifacts_dir(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "artifacts"

    # ------------------------------------------------------------- boot --

    def _load_all(self) -> None:
        for rec_path in sorted(self.runs_dir.glob("*/record.json")):
            try:
                with rec_path.open() as f:
                    rec = RunRecord.from_dict(json.load(f))
            except (OSError, ValueError, KeyError, TypeError):
                continue      # torn tmp leftovers etc.: not a record
            self._cache[rec.run_id] = rec
            self._next_seq = max(self._next_seq, rec.seq + 1)

    def recover(self) -> List[RunRecord]:
        """Re-queue every run a previous service life left unfinished.

        Returns the recovered records (now QUEUED, ``recovered`` bumped).
        Their ``checkpoints/`` directories are left intact -- the
        executor prefers checkpoint-resume over a fresh start.
        """
        recovered = []
        with self._lock:
            for rec in list(self._cache.values()):
                if rec.state in LIVE_STATES and rec.state != QUEUED:
                    rec = replace(rec, state=QUEUED,
                                  recovered=rec.recovered + 1,
                                  started_at=None)
                    self._persist(rec)
                    recovered.append(rec)
                # Runs already QUEUED need nothing: they never started,
                # so the admission scheduler just picks them up again.
        return recovered

    # ------------------------------------------------------------ write --

    def _persist(self, rec: RunRecord) -> None:
        self.run_dir(rec.run_id).mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.record_path(rec.run_id), rec.to_dict())
        self._cache[rec.run_id] = rec

    def create(self, tenant: str, spec: RunSpec) -> RunRecord:
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            rec = RunRecord(run_id=f"r{seq:06d}", tenant=tenant, spec=spec,
                            state=QUEUED, seq=seq, submitted_at=time.time())
            self._persist(rec)
            self.artifacts_dir(rec.run_id).mkdir(exist_ok=True)
            return rec

    def transition(self, run_id: str, new_state: str,
                   **amend: Any) -> RunRecord:
        """Move a run to ``new_state`` (validating the state machine)
        and merge ``amend`` fields, atomically."""
        with self._lock:
            rec = self.get(run_id)
            if new_state not in _TRANSITIONS[rec.state]:
                raise ServiceError(
                    f"run {run_id}: illegal transition "
                    f"{rec.state} -> {new_state}")
            rec = replace(rec, state=new_state, **amend)
            self._persist(rec)
            return rec

    def amend(self, run_id: str, **fields: Any) -> RunRecord:
        """Merge fields into a record without changing its state."""
        with self._lock:
            rec = replace(self.get(run_id), **fields)
            self._persist(rec)
            return rec

    # ------------------------------------------------------------- read --

    def get(self, run_id: str) -> RunRecord:
        with self._lock:
            try:
                return self._cache[run_id]
            except KeyError:
                raise UnknownRun(f"no run {run_id!r}") from None

    def list(self, tenant: Optional[str] = None,
             state: Optional[str] = None) -> List[RunRecord]:
        with self._lock:
            recs = sorted(self._cache.values(), key=lambda r: r.seq)
        if tenant is not None:
            recs = [r for r in recs if r.tenant == tenant]
        if state is not None:
            recs = [r for r in recs if r.state == state]
        return recs

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted({r.tenant for r in self._cache.values()})

    def list_artifacts(self, run_id: str) -> List[str]:
        self.get(run_id)                      # raise UnknownRun first
        d = self.artifacts_dir(run_id)
        if not d.is_dir():
            return []
        return sorted(p.name for p in d.iterdir() if p.is_file())

    def artifact_path(self, run_id: str, name: str) -> Path:
        """Resolve one artifact, refusing path escapes."""
        d = self.artifacts_dir(run_id).resolve()
        p = (d / name).resolve()
        if d not in p.parents or not p.is_file():
            raise UnknownRun(f"run {run_id}: no artifact {name!r}")
        return p
