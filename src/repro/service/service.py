"""The run service: store + admission + worker pool, one object.

:class:`RunService` is the in-process core that the REST layer (and
tests) drive.  Lifecycle::

    svc = RunService(root)      # opens the store, recovers a crash
    svc.start()                 # spawns the worker pool
    rec = svc.submit("alice", {"app": "jacobi"})
    ...
    svc.stop()

Workers are *pull*-model: each loops asking the admission scheduler
for the next fair-share pick whenever it is free, so admission
decisions always see the true current load, and a freed slot is
refilled immediately (the condition variable wakes on submit and on
run completion).  Everything a worker executes goes through
:func:`repro.service.executor.execute_run`; the service only tracks
the live :class:`ExecutionHandle` so kill and the live status /
metrics / trace queries can reach the running VM.
"""

from __future__ import annotations

import re
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import InvalidRunSpec, ServiceError, UnknownRun
from ..obs.export import event_to_dict
from ..obs.spans import derive_spans
from . import catalog
from .admission import DEFAULT_QUOTA, AdmissionScheduler, TenantQuota
from .executor import ExecutionHandle, ServiceDefaults, execute_run
from .spec import RunSpec
from .store import KILLED, QUEUED, RunRecord, RunStore, TERMINAL_STATES

_TENANT_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.-]{0,63}\Z")


class RunService:
    """Queue, admit, execute and archive runs for many tenants."""

    def __init__(self, root: Union[str, Path], n_workers: int = 4,
                 quotas: Optional[Dict[str, TenantQuota]] = None,
                 default_quota: TenantQuota = DEFAULT_QUOTA,
                 defaults: Optional[ServiceDefaults] = None,
                 quantum: int = 8) -> None:
        self.root = Path(root)
        self.n_workers = n_workers
        self.defaults: ServiceDefaults = dict(defaults or {})
        self.store = RunStore(self.root)
        #: Runs a previous service life left unfinished, re-queued at
        #: construction (before any worker can race the rescan).
        self.recovered: List[RunRecord] = self.store.recover()
        self.admission = AdmissionScheduler(self.store, quotas=quotas,
                                            default_quota=default_quota,
                                            quantum=quantum)
        self._cv = threading.Condition()
        self._handles: Dict[str, ExecutionHandle] = {}
        self._workers: List[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False

    # -------------------------------------------------------- lifecycle --

    def start(self) -> "RunService":
        if self._started:
            return self
        self._started = True
        for i in range(self.n_workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"pisces-svc-worker-{i}", daemon=True)
            t.start()
            self._workers.append(t)
        return self

    def stop(self, timeout: float = 30.0, kill_live: bool = False) -> None:
        """Stop accepting work and join the pool.  ``kill_live`` also
        kills executing runs (otherwise they finish first)."""
        self._stop.set()
        with self._cv:
            if kill_live:
                for h in self._handles.values():
                    h.kill()
            self._cv.notify_all()
        deadline = time.monotonic() + timeout
        for t in self._workers:
            t.join(max(0.0, deadline - time.monotonic()))
        self._started = False

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            with self._cv:
                rec = None if self._stop.is_set() else self.admission.select()
                if rec is None:
                    # Nothing admissible; sleep until a submit/finish
                    # (bounded, so stop() is never waited out).
                    self._cv.wait(timeout=0.2)
                    continue
                handle = ExecutionHandle(rec.run_id, threading.Event())
                self._handles[rec.run_id] = handle
            try:
                execute_run(rec, self.store, handle, self.defaults)
            finally:
                with self._cv:
                    self._handles.pop(rec.run_id, None)
                    self._cv.notify_all()

    # ----------------------------------------------------------- submit --

    def submit(self, tenant: str,
               spec: Union[RunSpec, Dict[str, Any]]) -> RunRecord:
        """Validate, quota-check and enqueue one run."""
        if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
            raise InvalidRunSpec(
                f"bad tenant name {tenant!r} (want [A-Za-z0-9][A-Za-z0-9_.-]*,"
                f" max 64 chars)")
        if not isinstance(spec, RunSpec):
            spec = RunSpec.from_dict(spec)
        catalog.build(spec)               # reject unbuildable specs now
        self.admission.check_submit(tenant)           # QuotaExceeded -> 429
        rec = self.store.create(tenant, spec)
        with self._cv:
            self._cv.notify_all()
        return rec

    # ------------------------------------------------------------- kill --

    def kill(self, run_id: str) -> RunRecord:
        """Kill a run in any live state (idempotent on terminal runs).

        A queued run dies immediately; a running run's kill lands at
        the next engine idle-check -- poll :meth:`get_run` (or use the
        client's ``wait``) for the KILLED record.
        """
        rec = self.store.get(run_id)
        if rec.state in TERMINAL_STATES:
            return rec
        with self._cv:
            handle = self._handles.get(run_id)
            if handle is not None:
                handle.kill()
                return self.store.get(run_id)
            rec = self.store.get(run_id)
            if rec.state in TERMINAL_STATES:
                return rec
            # Not on a worker: QUEUED (or ADMITTED-but-unclaimed, a
            # window that doesn't exist in the pull model).
            return self.store.transition(
                run_id, KILLED, finished_at=time.time(),
                exit={"outcome": "killed", "detail": "killed while queued"})

    # ------------------------------------------------------------ reads --

    def get_run(self, run_id: str) -> RunRecord:
        return self.store.get(run_id)

    def list_runs(self, tenant: Optional[str] = None,
                  state: Optional[str] = None) -> List[RunRecord]:
        return self.store.list(tenant=tenant, state=state)

    def usage(self, tenant: str) -> Dict[str, int]:
        return self.admission.usage(tenant)

    def health(self) -> Dict[str, Any]:
        with self._cv:
            live = sorted(self._handles)
        return {
            "status": "ok" if self._started else "stopped",
            "workers": self.n_workers,
            "live_runs": live,
            "queued": len(self.store.list(state=QUEUED)),
            "tenants": self.store.tenants(),
            "apps": list(catalog.app_names()),
            "recovered_runs": [r.run_id for r in self.recovered],
        }

    # ------------------------------------------------- live observability --

    def _live_vm(self, run_id: str):
        with self._cv:
            handle = self._handles.get(run_id)
            return handle.vm if handle is not None else None

    @staticmethod
    def _stable_read(fn, attempts: int = 8):
        """Read live VM state that the engine thread may be mutating.

        Plain retry: the structures involved (dicts, deques) never see
        torn *items*, only ``RuntimeError: changed size during
        iteration``, so a handful of attempts always lands between
        engine steps."""
        for _ in range(attempts - 1):
            try:
                return fn()
            except RuntimeError:
                time.sleep(0.005)
        return fn()

    def metrics(self, run_id: str) -> Dict[str, Any]:
        """The run's metrics snapshot: live registry if executing, the
        archived ``run.metrics.json`` otherwise."""
        vm = self._live_vm(run_id)
        if vm is not None:
            snap = self._stable_read(vm.metrics.snapshot)
            return {"live": True, "metrics": snap}
        import json
        rec = self.store.get(run_id)
        try:
            path = self.store.artifact_path(run_id, "run.metrics.json")
        except UnknownRun:
            raise ServiceError(
                f"run {run_id} ({rec.state}) has no metrics snapshot "
                f"yet") from None
        with path.open() as f:
            return {"live": False, "metrics": json.load(f)}

    def trace_events(self, run_id: str,
                     limit: int = 0) -> List[Dict[str, Any]]:
        """The run's trace stream (tail ``limit`` events if > 0), as
        JSON dicts -- live from the tracer ring, else archived."""
        vm = self._live_vm(run_id)
        if vm is not None:
            events = self._stable_read(lambda: list(vm.tracer.events))
        else:
            import json
            self.store.get(run_id)
            try:
                path = self.store.artifact_path(run_id, "run.events.jsonl")
            except UnknownRun:
                return []
            with path.open() as f:
                raw = [json.loads(line) for line in f if line.strip()]
            return raw[-limit:] if limit else raw
        dicts = [event_to_dict(e) for e in events]
        return dicts[-limit:] if limit else dicts

    def trace_spans(self, run_id: str) -> List[Dict[str, Any]]:
        """Closed spans derived from the trace stream (task lifetimes,
        messages in flight, critical sections)."""
        vm = self._live_vm(run_id)
        if vm is not None:
            events = self._stable_read(lambda: list(vm.tracer.events))
        else:
            from ..obs.export import event_from_dict
            events = [event_from_dict(d)
                      for d in self.trace_events(run_id)]
        return [
            {"name": s.name, "cat": s.cat, "pe": int(s.pe), "task": s.task,
             "start": int(s.start), "end": int(s.end),
             "duration": int(s.duration), "args": dict(s.args)}
            for s in derive_spans(events) if s.closed
        ]

    def status_text(self, run_id: str) -> str:
        """The monitor's status displays for a live run (section 11's
        queries, re-exposed over the control plane); for finished runs,
        a one-paragraph summary from the record."""
        vm = self._live_vm(run_id)
        if vm is None:
            rec = self.store.get(run_id)
            app, params = rec.spec.fingerprint()
            lines = [f"run {rec.run_id} [{rec.state}] tenant={rec.tenant} "
                     f"app={app}({params})"]
            if rec.exit:
                lines.append(f"exit: {rec.exit}")
            return "\n".join(lines)
        from ..exec_env.monitor import Monitor
        mon = Monitor(vm)
        return self._stable_read(lambda: "\n".join([
            mon.display_running_tasks(),
            mon.display_pe_loading(),
            mon.display_metrics(),
        ]))
