"""The run spec: what a tenant submits to the run service.

A :class:`RunSpec` is the JSON-shaped description of one PISCES run --
which app (a name from the service :mod:`~repro.service.catalog`, or
``"fortran"`` with inline Pisces Fortran source), its parameters, and
the run toggles the service honours (fault plan, tracing, periodic
checkpointing, execution core / window path / task-body vehicle).

The spec is deliberately *data*, never code: everything in it is
JSON-stable, so the store can persist it, the REST layer can carry it,
and -- crucially -- the service can rebuild the identical task registry
and configuration in a fresh process after a crash, which is what makes
checkpoint-resume of an interrupted run possible at all.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import InvalidRunSpec

#: Fields a spec dict may carry (anything else is refused loudly --
#: a typo'd field name must not silently change nothing).
SPEC_FIELDS = ("app", "params", "fault_plan", "trace", "checkpoint_every",
               "exec_core", "window_path", "task_bodies", "run_seed")

#: Axes with a closed set of values ("" defers to the service default).
_CHOICES = {
    "exec_core": ("", "threaded", "coop"),
    "window_path": ("", "fast", "batched", "reference"),
    "task_bodies": ("", "auto", "callable"),
}


@dataclass(frozen=True)
class RunSpec:
    """One runnable request, JSON round-trippable."""

    #: App name from the service catalog ("jacobi", "chaos_jacobi",
    #: "fortran", ...).
    app: str
    #: App-specific parameters (sizes, worker counts; for "fortran":
    #: ``source``, ``tasktype``, ``args``).  Values must be JSON-stable.
    params: Dict[str, Any] = field(default_factory=dict)
    #: Section-9-style ``.pfault`` plan text (see :mod:`repro.faults`),
    #: or None for a fault-free run.
    fault_plan: Optional[str] = None
    #: Keep the full trace stream in memory and archive it with the run
    #: (the stream is the service's bit-identity evidence).
    trace: bool = True
    #: Periodic checkpoint interval in virtual ticks (0 = off).  Runs
    #: with checkpoints survive a service crash via checkpoint-resume;
    #: runs without are re-queued from the start.
    checkpoint_every: int = 0
    #: Execution axes, "" = service default.  Every choice is
    #: bit-identical in virtual time (the core x dispatcher x body-form
    #: identity matrix), so tenants pick purely for host speed.
    exec_core: str = ""
    window_path: str = ""
    task_bodies: str = ""
    #: Seed of the VM-level run RNG (backoff jitter determinism).
    run_seed: int = 0

    def __post_init__(self) -> None:
        if not self.app or not isinstance(self.app, str):
            raise InvalidRunSpec(f"spec needs an app name, got {self.app!r}")
        if not isinstance(self.params, dict):
            raise InvalidRunSpec(f"params must be an object, "
                                 f"got {type(self.params).__name__}")
        for axis, choices in _CHOICES.items():
            v = getattr(self, axis)
            if v not in choices:
                raise InvalidRunSpec(
                    f"{axis}={v!r} is not one of {'/'.join(c or '<default>' for c in choices)}")
        if not isinstance(self.checkpoint_every, int) \
                or self.checkpoint_every < 0:
            raise InvalidRunSpec("checkpoint_every must be an int >= 0")
        if self.fault_plan is not None \
                and not isinstance(self.fault_plan, str):
            raise InvalidRunSpec("fault_plan must be .pfault text or null")

    # ------------------------------------------------------------- serde --

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunSpec":
        if not isinstance(d, dict):
            raise InvalidRunSpec(f"spec must be an object, got {d!r}")
        unknown = sorted(set(d) - set(SPEC_FIELDS))
        if unknown:
            raise InvalidRunSpec(
                f"unknown spec field(s) {', '.join(unknown)} "
                f"(recognized: {', '.join(SPEC_FIELDS)})")
        try:
            return cls(**d)
        except TypeError as e:
            raise InvalidRunSpec(str(e)) from None

    def fingerprint(self) -> Tuple[str, str]:
        """(app, short parameter summary) for listings and logs."""
        parts = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items())
                          if k != "source")
        return self.app, parts
