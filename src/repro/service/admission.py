"""Admission control: per-tenant quotas and fair-share scheduling.

Two gates stand between a submitted run and a worker:

* **Submission quota** -- a tenant may hold at most ``max_queued``
  unfinished-but-not-yet-running runs.  Checked synchronously at
  submit time; violation raises :class:`~repro.errors.QuotaExceeded`
  (HTTP 429 at the REST layer).
* **Admission quota** -- a tenant may have at most ``max_running``
  runs executing at once, occupying at most ``pe_budget`` virtual PEs
  in total.  Checked whenever a worker frees up.

Among admissible tenants the scheduler is **deficit round-robin**
(classic DRR, Shreedhar & Varghese): tenants are visited in a fixed
rotation; each visit adds ``quantum`` to the tenant's deficit counter;
the tenant's oldest queued run is admitted when its PE cost fits in
the deficit, which is then charged.  Cheap-run tenants therefore get
proportionally more runs per round than expensive-run tenants, and no
tenant can starve another by submitting first or submitting a lot --
a burst of 50 runs from tenant A still lets tenant B's single run in
on B's next rotation slot.

Deficits and the rotation pointer are in-memory only: fairness state
is advisory and restarts from zero after a service restart, while the
queue itself (the store) is what persists.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import QuotaExceeded
from . import catalog
from .store import ADMITTED, QUEUED, RUNNING, RunRecord, RunStore


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's limits."""

    #: Concurrent executing runs.
    max_running: int = 2
    #: Waiting runs (QUEUED + ADMITTED) the tenant may hold.
    max_queued: int = 8
    #: Total virtual PEs the tenant's running runs may occupy.
    pe_budget: int = 16


#: The quota applied to tenants with no explicit entry.
DEFAULT_QUOTA = TenantQuota()


class AdmissionScheduler:
    """Quota enforcement + DRR selection over the store's queue."""

    def __init__(self, store: RunStore,
                 quotas: Optional[Dict[str, TenantQuota]] = None,
                 default_quota: TenantQuota = DEFAULT_QUOTA,
                 quantum: int = 8) -> None:
        self.store = store
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self.quantum = quantum
        self._lock = threading.Lock()
        self._deficit: Dict[str, int] = {}
        self._rotation: List[str] = []       # fixed visit order, grown
        self._cursor = 0                     # next rotation position
        self._cost_cache: Dict[str, int] = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    # ------------------------------------------------------------- cost --

    def run_cost(self, rec: RunRecord) -> int:
        """PE cost of a run (cached -- building the app is pure)."""
        c = self._cost_cache.get(rec.run_id)
        if c is None:
            c = self._cost_cache[rec.run_id] = catalog.pe_cost(rec.spec)
        return c

    # ----------------------------------------------------------- submit --

    def check_submit(self, tenant: str) -> None:
        """Gate a submission; raises :class:`QuotaExceeded` over-quota."""
        q = self.quota_for(tenant)
        waiting = len(self.store.list(tenant=tenant, state=QUEUED)) \
            + len(self.store.list(tenant=tenant, state=ADMITTED))
        if waiting >= q.max_queued:
            raise QuotaExceeded(
                tenant, f"{waiting} runs already waiting "
                        f"(max_queued={q.max_queued})")

    # ------------------------------------------------------------ usage --

    def usage(self, tenant: str) -> Dict[str, int]:
        """Current consumption against the tenant's quota."""
        running = self.store.list(tenant=tenant, state=RUNNING) \
            + self.store.list(tenant=tenant, state=ADMITTED)
        q = self.quota_for(tenant)
        return {
            "running": len(running),
            "queued": len(self.store.list(tenant=tenant, state=QUEUED)),
            "pes_in_use": sum(self.run_cost(r) for r in running),
            "max_running": q.max_running,
            "max_queued": q.max_queued,
            "pe_budget": q.pe_budget,
        }

    # ------------------------------------------------------------ select --

    def _admissible(self, rec: RunRecord,
                    active_by_tenant: Dict[str, List[RunRecord]]) -> bool:
        q = self.quota_for(rec.tenant)
        active = active_by_tenant.get(rec.tenant, [])
        if len(active) >= q.max_running:
            return False
        in_use = sum(self.run_cost(r) for r in active)
        return in_use + self.run_cost(rec) <= q.pe_budget

    def select(self) -> Optional[RunRecord]:
        """Pick (and mark ADMITTED) the next run a freed worker should
        execute, or None if nothing is admissible right now."""
        with self._lock:
            queued: Dict[str, List[RunRecord]] = {}
            for rec in self.store.list(state=QUEUED):     # seq order
                queued.setdefault(rec.tenant, []).append(rec)
            if not queued:
                return None
            active: Dict[str, List[RunRecord]] = {}
            for state in (RUNNING, ADMITTED):
                for rec in self.store.list(state=state):
                    active.setdefault(rec.tenant, []).append(rec)

            # Grow the rotation with newly seen tenants (sorted so the
            # visit order is independent of submission timing).
            for t in sorted(queued):
                if t not in self._rotation:
                    self._rotation.append(t)

            n = len(self._rotation)
            for i in range(n):
                pos = (self._cursor + i) % n
                t = self._rotation[pos]
                backlog = queued.get(t)
                if not backlog:
                    self._deficit[t] = 0      # idle tenants bank nothing
                    continue
                deficit = self._deficit.get(t, 0) + self.quantum
                head = backlog[0]
                if self.run_cost(head) <= deficit \
                        and self._admissible(head, active):
                    self._deficit[t] = deficit - self.run_cost(head)
                    self._cursor = (pos + 1) % n
                    return self.store.transition(head.run_id, ADMITTED)
                # Over quota or saving up: bank the deficit, move on.
                self._deficit[t] = deficit
            return None
