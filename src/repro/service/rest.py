"""The REST control plane: stdlib ``http.server`` over a RunService.

Endpoints (all JSON unless noted)::

    GET  /health                         service status, apps, tenants
    GET  /apps                           catalog app names
    POST /runs                           submit {"tenant": t, "spec": {...}}
    GET  /runs[?tenant=&state=]          list run records
    GET  /runs/<id>                      one run record
    POST /runs/<id>/kill                 request kill (poll for KILLED)
    GET  /runs/<id>/metrics              metrics snapshot (live|archived)
    GET  /runs/<id>/trace[?limit=N]      trace events (tail N)
    GET  /runs/<id>/spans                derived spans
    GET  /runs/<id>/status               monitor status text (text/plain)
    GET  /runs/<id>/artifacts            archived artifact names
    GET  /runs/<id>/artifacts/<name>     artifact bytes (octet-stream)
    GET  /tenants                        known tenants
    GET  /tenants/<t>/usage              quota consumption

Error mapping: :class:`InvalidRunSpec` -> 400, :class:`UnknownRun` ->
404, :class:`QuotaExceeded` -> **429**, anything else -> 500; every
error body is ``{"error": type, "detail": text}``.

Multi-tenancy is cooperative, not authenticated (the service trusts
the submitted tenant name, like the paper's single-machine PISCES
trusts its user); an ``X-Pisces-Tenant`` header, when present, must
match the addressed run's tenant -- a guard against *accidental*
cross-tenant kills, not an auth scheme.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..errors import (InvalidRunSpec, QuotaExceeded, ServiceError,
                      UnknownRun)
from .service import RunService
from .store import RunRecord


def record_json(rec: RunRecord) -> Dict[str, Any]:
    return rec.to_dict()


class _Handler(BaseHTTPRequestHandler):
    """One request.  ``self.server.service`` is the RunService."""

    server_version = "PiscesRunService/1.0"
    protocol_version = "HTTP/1.1"

    # quiet by default; the __main__ entry point can flip this
    log_to_stderr = False

    def log_message(self, fmt: str, *args: Any) -> None:
        if self.log_to_stderr:
            super().log_message(fmt, *args)

    @property
    def service(self) -> RunService:
        return self.server.service        # type: ignore[attr-defined]

    # ------------------------------------------------------------ plumbing

    def _send(self, code: int, payload: Any,
              content_type: str = "application/json") -> None:
        if content_type == "application/json":
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        elif isinstance(payload, bytes):
            body = payload
        else:
            body = str(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, exc: BaseException) -> None:
        self._send(code, {"error": type(exc).__name__, "detail": str(exc)})

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError as e:
            raise InvalidRunSpec(f"request body is not JSON: {e}") from None
        if not isinstance(body, dict):
            raise InvalidRunSpec("request body must be a JSON object")
        return body

    def _check_tenant(self, rec: RunRecord) -> None:
        claimed = self.headers.get("X-Pisces-Tenant")
        if claimed and claimed != rec.tenant:
            raise PermissionError(
                f"run {rec.run_id} belongs to tenant {rec.tenant!r}")

    def _route(self, method: str) -> None:
        url = urlparse(self.path)
        parts = tuple(p for p in url.path.split("/") if p)
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            handled = self._dispatch(method, parts, query)
        except (InvalidRunSpec, ValueError) as e:
            self._error(400, e)
        except PermissionError as e:
            self._error(403, e)
        except UnknownRun as e:
            self._error(404, e)
        except QuotaExceeded as e:
            self._error(429, e)
        except ServiceError as e:
            self._error(409, e)
        except Exception as e:                      # noqa: BLE001
            self._error(500, e)
        else:
            if not handled:
                self._send(404, {"error": "NotFound",
                                 "detail": f"no route {method} {url.path}"})

    # ------------------------------------------------------------- routes

    def _dispatch(self, method: str, parts: Tuple[str, ...],
                  query: Dict[str, str]) -> bool:
        svc = self.service

        if method == "GET" and parts == ("health",):
            self._send(200, svc.health())
        elif method == "GET" and parts == ("apps",):
            from . import catalog
            self._send(200, {"apps": list(catalog.app_names())})
        elif method == "POST" and parts == ("runs",):
            body = self._read_body()
            tenant = body.get("tenant") or \
                self.headers.get("X-Pisces-Tenant") or ""
            rec = svc.submit(tenant, body.get("spec") or {})
            self._send(201, record_json(rec))
        elif method == "GET" and parts == ("runs",):
            recs = svc.list_runs(tenant=query.get("tenant"),
                                 state=query.get("state"))
            self._send(200, {"runs": [record_json(r) for r in recs]})
        elif method == "GET" and len(parts) == 2 and parts[0] == "runs":
            self._send(200, record_json(svc.get_run(parts[1])))
        elif method == "POST" and len(parts) == 3 \
                and parts[0] == "runs" and parts[2] == "kill":
            self._check_tenant(svc.get_run(parts[1]))
            self._send(202, record_json(svc.kill(parts[1])))
        elif method == "GET" and len(parts) == 3 and parts[0] == "runs":
            run_id, leaf = parts[1], parts[2]
            if leaf == "metrics":
                self._send(200, svc.metrics(run_id))
            elif leaf == "trace":
                limit = int(query.get("limit", "0"))
                self._send(200, {"events": svc.trace_events(run_id, limit)})
            elif leaf == "spans":
                self._send(200, {"spans": svc.trace_spans(run_id)})
            elif leaf == "status":
                self._send(200, svc.status_text(run_id) + "\n",
                           content_type="text/plain; charset=utf-8")
            elif leaf == "artifacts":
                self._send(200, {"artifacts":
                                 svc.store.list_artifacts(run_id)})
            else:
                return False
        elif method == "GET" and len(parts) == 4 \
                and parts[0] == "runs" and parts[2] == "artifacts":
            path = svc.store.artifact_path(parts[1], parts[3])
            self._send(200, path.read_bytes(),
                       content_type="application/octet-stream")
        elif method == "GET" and parts == ("tenants",):
            self._send(200, {"tenants": svc.store.tenants()})
        elif method == "GET" and len(parts) == 3 \
                and parts[0] == "tenants" and parts[2] == "usage":
            self._send(200, {"tenant": parts[1],
                             "usage": svc.usage(parts[1])})
        else:
            return False
        return True

    def do_GET(self) -> None:          # noqa: N802 (http.server casing)
        self._route("GET")

    def do_POST(self) -> None:         # noqa: N802
        self._route("POST")


class ServiceHTTPServer(ThreadingHTTPServer):
    """The HTTP front end; one handler thread per request."""

    daemon_threads = True

    def __init__(self, service: RunService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        super().__init__((host, port), _Handler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(service: RunService, host: str = "127.0.0.1", port: int = 0,
          ) -> Tuple[ServiceHTTPServer, threading.Thread]:
    """Start serving in a background thread; returns (server, thread).

    ``port=0`` binds an ephemeral port -- read ``server.url``.
    """
    server = ServiceHTTPServer(service, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever,
                              name="pisces-svc-http", daemon=True)
    thread.start()
    return server, thread
