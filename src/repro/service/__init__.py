"""The multi-tenant run service (the layer above :mod:`repro.api`).

The paper's PISCES environment is single-user by construction: one
``pisces`` session, one configuration, one run.  This package turns
the reproduction into a *shared* environment -- a long-lived service
that queues, admits, executes and archives many concurrent runs for
many tenants, with nothing beyond the standard library:

* :mod:`~repro.service.spec` -- the JSON run spec tenants submit;
* :mod:`~repro.service.catalog` -- named, deterministically
  rebuildable applications (the app zoo + Pisces Fortran source);
* :mod:`~repro.service.store` -- the persistent, crash-safe run store
  (QUEUED -> ADMITTED -> RUNNING -> DONE|FAILED|KILLED);
* :mod:`~repro.service.admission` -- per-tenant quotas and
  deficit-round-robin fair share;
* :mod:`~repro.service.executor` -- one run's execution: kill seam,
  checkpoint-resume, artifact archiving;
* :mod:`~repro.service.service` -- :class:`RunService`, the worker
  pool tying the above together;
* :mod:`~repro.service.rest` / :mod:`~repro.service.client` -- the
  HTTP control plane and its stdlib client;
* ``python -m repro.service`` -- the server entry point.

The load-bearing guarantee: a run executed by the service has the
same virtual time and trace stream as the same spec run standalone.
The service only ever adds pure observers (tracing, metrics, the kill
hook, periodic checkpoints) to the VM it builds from the catalog's
pure plan, so multi-tenancy costs no determinism.
"""

from .admission import DEFAULT_QUOTA, AdmissionScheduler, TenantQuota
from .catalog import APPS, AppPlan, app_names, build, pe_cost
from .client import RunTimeout, ServiceClient, ServiceClientError
from .executor import ExecutionHandle, KilledByService, execute_run
from .rest import ServiceHTTPServer, serve
from .service import RunService
from .spec import RunSpec
from .store import (ADMITTED, DONE, FAILED, KILLED, LIVE_STATES, QUEUED,
                    RUNNING, TERMINAL_STATES, RunRecord, RunStore)

__all__ = [
    "ADMITTED", "APPS", "AdmissionScheduler", "AppPlan", "DEFAULT_QUOTA",
    "DONE", "ExecutionHandle", "FAILED", "KILLED", "KilledByService",
    "LIVE_STATES", "QUEUED", "RUNNING", "RunRecord", "RunService",
    "RunSpec", "RunStore", "RunTimeout", "ServiceClient",
    "ServiceClientError", "ServiceHTTPServer", "TERMINAL_STATES",
    "TenantQuota", "app_names", "build", "execute_run", "pe_cost", "serve",
]
