"""A stdlib client for the run-service REST API.

``ServiceClient`` is a thin, dependency-free wrapper over
``urllib.request`` that speaks the control plane's JSON dialect and
maps its error envelope back onto the library's exception types --
submitting over quota raises the same :class:`QuotaExceeded` an
in-process caller would get.

    from repro.service.client import ServiceClient

    c = ServiceClient("http://127.0.0.1:8737", tenant="alice")
    rec = c.submit({"app": "jacobi", "params": {"n": 16}})
    rec = c.wait(rec["run_id"])
    print(rec["exit"]["elapsed_ticks"])
    c.fetch_artifact(rec["run_id"], "run.events.jsonl", "trace.jsonl")
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import (InvalidRunSpec, QuotaExceeded, ServiceError,
                      UnknownRun)
from .store import TERMINAL_STATES


class ServiceClientError(ServiceError):
    """An HTTP error the client could not map to a library type."""

    def __init__(self, status: int, detail: str):
        self.status = status
        self.detail = detail
        super().__init__(f"HTTP {status}: {detail}")


class RunTimeout(ServiceError):
    """:meth:`ServiceClient.wait` gave up before the run finished."""


class ServiceClient:
    """One tenant's connection to a run service."""

    def __init__(self, base_url: str, tenant: str = "",
                 timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # ---------------------------------------------------------- plumbing --

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 raw: bool = False) -> Any:
        req = urllib.request.Request(
            self.base_url + path, method=method,
            data=None if body is None
            else json.dumps(body).encode("utf-8"))
        req.add_header("Content-Type", "application/json")
        if self.tenant:
            req.add_header("X-Pisces-Tenant", self.tenant)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                data = resp.read()
        except urllib.error.HTTPError as e:
            self._raise_mapped(e)
        if raw:
            return data
        return json.loads(data) if data.strip() else {}

    @staticmethod
    def _raise_mapped(e: "urllib.error.HTTPError") -> None:
        detail, err_type = e.reason, ""
        try:
            envelope = json.loads(e.read())
            detail = envelope.get("detail", detail)
            err_type = envelope.get("error", "")
        except Exception:
            pass
        if e.code == 429:
            raise QuotaExceeded("(see detail)", detail) from None
        if e.code == 404 and err_type in ("UnknownRun", ""):
            raise UnknownRun(detail) from None
        if e.code == 400:
            raise InvalidRunSpec(detail) from None
        raise ServiceClientError(e.code, detail) from None

    # ------------------------------------------------------------- calls --

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def apps(self) -> List[str]:
        return self._request("GET", "/apps")["apps"]

    def submit(self, spec: Dict[str, Any],
               tenant: str = "") -> Dict[str, Any]:
        """Submit a run; returns the QUEUED run record."""
        return self._request("POST", "/runs", body={
            "tenant": tenant or self.tenant, "spec": spec})

    def list_runs(self, tenant: str = "",
                  state: str = "") -> List[Dict[str, Any]]:
        qs = []
        if tenant:
            qs.append(f"tenant={tenant}")
        if state:
            qs.append(f"state={state}")
        path = "/runs" + ("?" + "&".join(qs) if qs else "")
        return self._request("GET", path)["runs"]

    def get_run(self, run_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/runs/{run_id}")

    def kill(self, run_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/runs/{run_id}/kill", body={})

    def wait(self, run_id: str, timeout: float = 120.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the run reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            rec = self.get_run(run_id)
            if rec["state"] in TERMINAL_STATES:
                return rec
            if time.monotonic() >= deadline:
                raise RunTimeout(
                    f"run {run_id} still {rec['state']} after {timeout}s")
            time.sleep(poll)

    def metrics(self, run_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/runs/{run_id}/metrics")

    def trace(self, run_id: str, limit: int = 0) -> List[Dict[str, Any]]:
        path = f"/runs/{run_id}/trace"
        if limit:
            path += f"?limit={limit}"
        return self._request("GET", path)["events"]

    def spans(self, run_id: str) -> List[Dict[str, Any]]:
        return self._request("GET", f"/runs/{run_id}/spans")["spans"]

    def status_text(self, run_id: str) -> str:
        return self._request("GET", f"/runs/{run_id}/status",
                             raw=True).decode("utf-8")

    def artifacts(self, run_id: str) -> List[str]:
        return self._request("GET",
                             f"/runs/{run_id}/artifacts")["artifacts"]

    def fetch_artifact(self, run_id: str, name: str,
                       dest: Union[str, Path, None] = None,
                       ) -> Union[bytes, Path]:
        """Download one artifact; returns bytes, or the written path
        when ``dest`` is given."""
        data = self._request("GET", f"/runs/{run_id}/artifacts/{name}",
                             raw=True)
        if dest is None:
            return data
        dest = Path(dest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_bytes(data)
        return dest

    def usage(self, tenant: str = "") -> Dict[str, Any]:
        t = tenant or self.tenant
        return self._request("GET", f"/tenants/{t}/usage")["usage"]

    def tenants(self) -> List[str]:
        return self._request("GET", "/tenants")["tenants"]
