"""The service's app catalog: named, rebuildable PISCES applications.

The run service never accepts code from tenants -- it accepts a
*name* plus JSON parameters (or, for ``"fortran"``, Pisces Fortran
source text, which the preprocessor turns into a registry).  Each
catalog entry is a pure function from parameters to an
:class:`AppPlan`: the task registry, the machine configuration, and
the root ``(tasktype, args)`` to run.

Rebuildability is the point, not a convenience: a run interrupted by a
service crash is resumed from its latest ``.pckpt`` checkpoint, and
:func:`repro.api.restore_vm` needs the *identical* registry to attach
restored tasks to.  Because every entry here is deterministic in its
parameters, replaying ``catalog.build(spec)`` in a fresh process
yields that registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from ..apps import chaos_jacobi as _chaos
from ..apps import fem as _fem
from ..apps import integrate as _integrate
from ..apps import jacobi as _jacobi
from ..apps import matmul as _matmul
from ..apps import pipeline as _pipeline
from ..apps import truss as _truss
from ..config.configuration import ClusterSpec, Configuration
from ..core.supervision import Supervision
from ..core.task import TaskRegistry
from ..errors import InvalidRunSpec
from .spec import RunSpec


@dataclass(frozen=True)
class AppPlan:
    """Everything needed to boot and run one catalog app."""

    registry: TaskRegistry
    config: Configuration
    tasktype: str
    args: Tuple[Any, ...] = ()


def _params(spec: RunSpec, allowed: Dict[str, Any]) -> Dict[str, Any]:
    """Merge spec params over defaults, refusing unknown keys."""
    unknown = sorted(set(spec.params) - set(allowed))
    if unknown:
        raise InvalidRunSpec(
            f"app {spec.app!r} does not take parameter(s) "
            f"{', '.join(unknown)} (takes: {', '.join(sorted(allowed))})")
    merged = dict(allowed)
    merged.update(spec.params)
    return merged


def _task_clusters(n_clusters: int, slots: int, name: str) -> Configuration:
    """The task-parallel apps' standard shape: ``n_clusters`` clusters
    on primary PEs 3, 4, ... (matches the app entry points)."""
    clusters = tuple(ClusterSpec(number=i, primary_pe=2 + i, slots=slots)
                     for i in range(1, n_clusters + 1))
    return Configuration(clusters=clusters, name=name)


def _force_cluster(force_pes: int, name: str) -> Configuration:
    """The force apps' shape: one cluster, ``force_pes`` secondaries."""
    return Configuration(
        clusters=(ClusterSpec(number=1, primary_pe=3, slots=2,
                              secondary_pes=tuple(range(4, 4 + force_pes))),),
        name=name)


# ------------------------------------------------------------- builders ----


def _build_jacobi(spec: RunSpec) -> AppPlan:
    p = _params(spec, dict(n=20, sweeps=3, n_workers=3))
    return AppPlan(
        registry=_jacobi.build_windows_registry(p["n"], p["sweeps"],
                                                p["n_workers"]),
        config=_task_clusters(2, max(2, p["n_workers"]), "jacobi-windows"),
        tasktype="JMASTER")


def _build_jacobi_force(spec: RunSpec) -> AppPlan:
    p = _params(spec, dict(n=20, sweeps=3, force_pes=3))
    return AppPlan(
        registry=_jacobi.build_force_registry(p["n"], p["sweeps"]),
        config=_force_cluster(p["force_pes"],
                              f"jacobi-force-{p['force_pes'] + 1}"),
        tasktype="JFORCE", args=(p["n"], p["sweeps"]))


def _build_matmul(spec: RunSpec) -> AppPlan:
    p = _params(spec, dict(n=16, n_workers=3, n_clusters=2))
    return AppPlan(
        registry=_matmul.build_tasks_registry(p["n"], p["n_workers"]),
        config=_task_clusters(p["n_clusters"], max(2, p["n_workers"]),
                              "matmul-tasks"),
        tasktype="MMASTER")


def _build_integrate(spec: RunSpec) -> AppPlan:
    p = _params(spec, dict(pieces=12, points_per_piece=6, n_workers=3,
                           n_clusters=2, a=0.0, b=3.0))
    return AppPlan(
        registry=_integrate.build_integrate_registry(
            _integrate.default_integrand, float(p["a"]), float(p["b"]),
            p["pieces"], p["points_per_piece"], p["n_workers"]),
        config=_task_clusters(p["n_clusters"], max(2, p["n_workers"]),
                              "integrate"),
        tasktype="IMASTER")


def _build_pipeline(spec: RunSpec) -> AppPlan:
    p = _params(spec, dict(n_stages=3, n_items=10, n_clusters=2, slots=4))
    return AppPlan(
        registry=_pipeline.build_pipeline_registry(
            p["n_stages"], list(range(p["n_items"]))),
        config=_task_clusters(p["n_clusters"], p["slots"], "pipeline"),
        tasktype="COORD")


def _build_fem(spec: RunSpec) -> AppPlan:
    p = _params(spec, dict(n_elements=12, force_pes=3))
    prob = _fem.FEMProblem(n_elements=p["n_elements"])
    return AppPlan(
        registry=_fem.build_fem_registry(prob),
        config=_force_cluster(p["force_pes"],
                              f"fem-force-{p['force_pes'] + 1}"),
        tasktype="FEM")


def _build_truss(spec: RunSpec) -> AppPlan:
    p = _params(spec, dict(n_panels=4, force_pes=3))
    prob = _truss.pratt_truss(n_panels=p["n_panels"])
    return AppPlan(
        registry=_truss.build_truss_registry(prob),
        config=_force_cluster(p["force_pes"],
                              f"truss-force-{p['force_pes'] + 1}"),
        tasktype="TRUSS")


def _build_chaos_jacobi(spec: RunSpec) -> AppPlan:
    p = _params(spec, dict(n=20, sweeps=3, n_workers=3, supervision="none",
                           max_restarts=3, backoff_ticks=1_000,
                           on_death="abort", resend_delay=8_000,
                           idle_timeout=60_000, max_rounds=200))
    if p["on_death"] not in ("abort", "reassign"):
        raise InvalidRunSpec("on_death must be abort|reassign")
    sup = None
    if p["supervision"] != "none":
        if p["supervision"] not in ("notify", "restart"):
            raise InvalidRunSpec("supervision must be none|notify|restart")
        sup = Supervision(policy=p["supervision"],
                          max_restarts=p["max_restarts"],
                          backoff_ticks=p["backoff_ticks"])
    clusters = tuple(ClusterSpec(number=i, primary_pe=2 + i,
                                 slots=max(2, p["n_workers"]) + 1)
                     for i in range(1, 3))
    return AppPlan(
        registry=_chaos.build_chaos_registry(
            p["n"], p["sweeps"], p["n_workers"], sup, p["on_death"],
            p["resend_delay"], p["idle_timeout"], p["max_rounds"]),
        config=Configuration(clusters=clusters, name="chaos-jacobi"),
        tasktype="CMASTER")


def build_spin_registry(rounds: int, ticks_per_round: int) -> TaskRegistry:
    """A synthetic app: one task computing in small slices.

    Exists for the service's own sake -- its duration is controllable
    (``rounds`` engine slices, each costing ``ticks_per_round`` virtual
    ticks), so tests can hold a worker busy long enough to exercise the
    kill endpoint, quota limits and fair-share ordering.
    """
    reg = TaskRegistry()

    @reg.tasktype("SPIN")
    def spin(ctx, rounds, ticks):
        done = 0
        for _ in range(rounds):
            yield from ctx.compute(ticks)
            done += 1
        return done

    return reg


def _build_spin(spec: RunSpec) -> AppPlan:
    p = _params(spec, dict(rounds=100, ticks_per_round=50))
    return AppPlan(
        registry=build_spin_registry(p["rounds"], p["ticks_per_round"]),
        config=_task_clusters(1, 2, "spin"),
        tasktype="SPIN", args=(p["rounds"], p["ticks_per_round"]))


def _build_fortran(spec: RunSpec) -> AppPlan:
    from ..fortran.preprocessor import preprocess

    p = _params(spec, dict(source="", tasktype="", args=[],
                           n_clusters=2, slots=4))
    if not p["source"]:
        raise InvalidRunSpec("fortran app needs params.source (program text)")
    try:
        program = preprocess(p["source"])
    except Exception as e:            # surface lex/parse errors as 400s
        raise InvalidRunSpec(f"fortran source did not preprocess: {e}") from e
    names = program.task_names()
    tasktype = p["tasktype"] or (names[0] if names else "")
    if tasktype not in names:
        raise InvalidRunSpec(
            f"tasktype {tasktype!r} not defined by the source "
            f"(defines: {', '.join(names) or 'none'})")
    return AppPlan(
        registry=program.registry,
        config=_task_clusters(p["n_clusters"], p["slots"], "fortran"),
        tasktype=tasktype, args=tuple(p["args"]))


#: Name -> builder.  Every builder is deterministic in the spec params.
APPS: Dict[str, Callable[[RunSpec], AppPlan]] = {
    "jacobi": _build_jacobi,
    "jacobi_force": _build_jacobi_force,
    "matmul": _build_matmul,
    "integrate": _build_integrate,
    "pipeline": _build_pipeline,
    "fem": _build_fem,
    "truss": _build_truss,
    "chaos_jacobi": _build_chaos_jacobi,
    "spin": _build_spin,
    "fortran": _build_fortran,
}


def app_names() -> Tuple[str, ...]:
    return tuple(sorted(APPS))


def build(spec: RunSpec) -> AppPlan:
    """Build the plan for ``spec`` (raises :class:`InvalidRunSpec`)."""
    try:
        builder = APPS[spec.app]
    except KeyError:
        raise InvalidRunSpec(
            f"unknown app {spec.app!r} "
            f"(catalog: {', '.join(app_names())})") from None
    return builder(spec)


def pe_cost(spec: RunSpec) -> int:
    """PEs the run will occupy -- the admission scheduler's cost unit."""
    return len(build(spec).config.used_pes())
