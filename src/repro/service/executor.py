"""Executing one admitted run: boot, run (or checkpoint-resume),
archive, record the exit.

The executor is where the service's three core guarantees live:

* **Determinism** -- the VM is built from the catalog's pure plan plus
  the spec's execution axes; the service adds only *pure observers*
  (full trace stream, metrics, the kill hook on the engine's
  ``on_idle_check`` seam, periodic checkpointing), so a service run's
  virtual time and trace stream are bit-identical to the same spec run
  standalone.
* **Kill** -- a run is killed by setting its handle's event; the hook
  raises :class:`KilledByService` between engine slices, the engine's
  run loop shuts the VM down cleanly (reaping every simulated process)
  and the exception surfaces here, where the run is marked KILLED.
* **Recovery** -- a run found interrupted at boot re-executes through
  the same path; if it was checkpointing, :func:`find_latest_checkpoint`
  plus :func:`repro.api.restore_vm` (with the catalog-rebuilt registry)
  resume it from the last ``.pckpt`` instead of starting over.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from ..api import _ALL_TRACE_EVENTS, find_latest_checkpoint, restore_vm
from ..core.vm import PiscesVM
from ..faults import loads as load_fault_plan
from ..obs.export import export_run, run_manifest
from . import catalog
from .store import (DONE, FAILED, KILLED, RUNNING, RunRecord, RunStore)


class KilledByService(BaseException):
    """Raised on the engine thread when a run's kill event is set.

    Deliberately NOT a :class:`~repro.errors.PiscesError` (nor even an
    ``Exception``): simulated task code may legitimately catch broad
    exceptions, and a kill must not be swallowable.
    """

    def __init__(self, run_id: str):
        self.run_id = run_id
        super().__init__(f"run {run_id} killed by service")


@dataclass
class ExecutionHandle:
    """The service's live view of one executing run."""

    run_id: str
    kill_event: threading.Event
    #: The live VM, set once booted (read by the status/metrics/trace
    #: endpoints while the run executes).
    vm: Optional[PiscesVM] = None

    def kill(self) -> None:
        self.kill_event.set()


#: Axis defaults the service applies when the spec leaves them "".
ServiceDefaults = Dict[str, str]

#: Checkpoints kept per run; > 1 so a bundle torn by kill -9 mid-write
#: still leaves a previous complete one to resume from.
CHECKPOINT_KEEP = 3

_PROVENANCE_KEYS = ("dispatcher", "exec_core", "task_bodies", "window_path",
                    "repro_version", "seed", "fault_plan_hash")


def build_vm(rec: RunRecord, store: RunStore,
             defaults: Optional[ServiceDefaults] = None) -> PiscesVM:
    """Build the (fresh-start) VM for a run record."""
    spec = rec.spec
    defaults = defaults or {}
    plan = catalog.build(spec)
    config = replace(
        plan.config,
        name=f"{rec.run_id}-{plan.config.name}",
        trace_events=_ALL_TRACE_EVENTS if spec.trace else (),
        metrics_enabled=True,
        exec_core=spec.exec_core or defaults.get("exec_core", ""),
        window_path=spec.window_path or defaults.get("window_path", ""),
        task_bodies=spec.task_bodies or defaults.get("task_bodies", ""),
        run_seed=spec.run_seed,
        checkpoint_every=spec.checkpoint_every,
        checkpoint_dir=str(store.checkpoint_dir(rec.run_id)),
        checkpoint_keep=CHECKPOINT_KEEP,
    )
    if spec.checkpoint_every:
        store.checkpoint_dir(rec.run_id).mkdir(parents=True, exist_ok=True)
    fault_plan = (load_fault_plan(spec.fault_plan)
                  if spec.fault_plan else None)
    return PiscesVM(config, registry=plan.registry, fault_plan=fault_plan)


def _install_kill_hook(vm: PiscesVM, handle: ExecutionHandle) -> None:
    """Arm the per-run kill seam on the engine's idle-check hook.

    The hook runs between dispatches on the engine thread and only
    reads an Event, so it is a pure observer: virtual time is
    untouched (it does disable the engine's fast batch path, which is
    a host-speed matter only).
    """

    def check() -> None:
        if handle.kill_event.is_set():
            raise KilledByService(handle.run_id)

    vm.engine.on_idle_check = check


def _archive(vm: PiscesVM, rec: RunRecord, store: RunStore) -> Dict[str, Any]:
    """Write the run's artifact bundle; returns provenance metadata.

    Best-effort by design: archiving a killed or crashed run keeps
    whatever evidence exists (partial trace, fault events so far).
    """
    art = store.artifacts_dir(rec.run_id)
    art.mkdir(parents=True, exist_ok=True)
    provenance: Dict[str, Any] = {}
    try:
        manifest = run_manifest(vm)
        provenance = {k: manifest.get(k) for k in _PROVENANCE_KEYS}
    except Exception:
        pass
    try:
        export_run(vm, art, prefix="run")
    except Exception:
        pass
    try:
        if vm.faults is not None:
            vm.faults.write_jsonl(art / "run.faults.jsonl")
    except Exception:
        pass
    try:
        hook = vm.sched_hook
        if hook is not None and hasattr(hook, "dumps"):
            (art / "run.psched").write_text(hook.dumps(), encoding="utf-8")
    except Exception:
        pass
    return provenance


def standalone_run(spec, defaults: Optional[ServiceDefaults] = None):
    """Run a spec outside the service: the bit-identity reference leg.

    Builds the same catalog plan with the same execution axes but none
    of the service's observers (no kill hook, no checkpointing, no
    run-id config name) and runs it to completion.  The soak tests
    compare a service run's virtual time and trace stream against this
    -- equality is the proof that the service added nothing but pure
    observers.
    """
    defaults = defaults or {}
    plan = catalog.build(spec)
    config = replace(
        plan.config,
        trace_events=_ALL_TRACE_EVENTS if spec.trace else (),
        metrics_enabled=True,
        exec_core=spec.exec_core or defaults.get("exec_core", ""),
        window_path=spec.window_path or defaults.get("window_path", ""),
        task_bodies=spec.task_bodies or defaults.get("task_bodies", ""),
        run_seed=spec.run_seed,
    )
    fault_plan = (load_fault_plan(spec.fault_plan)
                  if spec.fault_plan else None)
    vm = PiscesVM(config, registry=plan.registry, fault_plan=fault_plan)
    return vm.run(plan.tasktype, *plan.args, shutdown=True)


def execute_run(rec: RunRecord, store: RunStore, handle: ExecutionHandle,
                defaults: Optional[ServiceDefaults] = None) -> RunRecord:
    """Run one ADMITTED record to a terminal state.  Called on a worker
    thread; never raises (failures become the FAILED state)."""
    if handle.kill_event.is_set():        # killed while waiting to start
        return store.transition(rec.run_id, KILLED,
                                finished_at=time.time(),
                                exit={"outcome": "killed",
                                      "detail": "killed before start"})

    vm: Optional[PiscesVM] = None
    restored = None
    try:
        # Prefer checkpoint-resume for recovered runs that were
        # checkpointing; anything else starts fresh.
        if rec.recovered and rec.spec.checkpoint_every:
            ckpt = find_latest_checkpoint(store.checkpoint_dir(rec.run_id))
            if ckpt is not None:
                try:
                    restored = restore_vm(
                        ckpt, registry=catalog.build(rec.spec).registry)
                    vm = restored.vm
                    rec = store.amend(rec.run_id, resumed_from=ckpt.name)
                except Exception:
                    restored, vm = None, None     # fall back to fresh
        if vm is None:
            vm = build_vm(rec, store, defaults)
        handle.vm = vm
        _install_kill_hook(vm, handle)
        rec = store.transition(rec.run_id, RUNNING, started_at=time.time())

        plan_app = catalog.build(rec.spec)
        if restored is not None:
            result = restored.resume(shutdown=True)
        else:
            result = vm.run(plan_app.tasktype, *plan_app.args, shutdown=True)

        provenance = _archive(vm, rec, store)
        value_repr = repr(result.value)
        if len(value_repr) > 200:
            value_repr = value_repr[:200] + "..."
        return store.transition(
            rec.run_id, DONE, finished_at=time.time(),
            provenance=provenance,
            artifacts=store.list_artifacts(rec.run_id),
            exit={"outcome": "done", "elapsed_ticks": int(result.elapsed),
                  "value": value_repr,
                  "resumed_from": rec.resumed_from})
    except KilledByService:
        provenance = _archive(vm, rec, store) if vm is not None else {}
        return store.transition(
            rec.run_id, KILLED, finished_at=time.time(),
            provenance=provenance,
            artifacts=store.list_artifacts(rec.run_id),
            exit={"outcome": "killed",
                  "elapsed_ticks": (int(vm.machine.elapsed())
                                    if vm is not None else None)})
    except Exception as e:
        provenance = _archive(vm, rec, store) if vm is not None else {}
        return store.transition(
            rec.run_id, FAILED, finished_at=time.time(),
            provenance=provenance,
            artifacts=store.list_artifacts(rec.run_id),
            exit={"outcome": "failed",
                  "error": f"{type(e).__name__}: {e}",
                  "traceback": traceback.format_exc(limit=8)})
    finally:
        handle.vm = None
        if vm is not None:
            try:
                vm.shutdown()
            except Exception:
                pass
