"""Observability: metrics registry, span derivation, structured export.

The quantitative layer over section 12's event tracing and section 11's
execution-environment monitor: a :class:`MetricsRegistry` collects
counters / gauges / tick-bucketed histograms while the machine runs
(zero cost when disabled); :mod:`repro.obs.spans` derives task /
message / critical-section intervals from trace events; and
:mod:`repro.obs.export` writes JSONL event logs, Chrome trace files and
monitor text snapshots.  :mod:`repro.obs.profile` layers the causal
profiler on top: wait-state accounting, critical-path extraction and
flamegraph/Chrome-trace exporters.
"""

from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from .spans import (
    CAT_CRITICAL,
    CAT_FAULT,
    CAT_MESSAGE,
    CAT_TASK,
    Span,
    derive_spans,
    span_summary,
)
from .export import (
    chrome_trace_events,
    event_from_dict,
    event_to_dict,
    export_run,
    load_chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_snapshot,
    write_run_manifest,
)
from .profile import (
    CausalProfiler,
    CriticalPath,
    extract_critical_path,
    profile_report,
    write_profile,
)

__all__ = [
    "CAT_CRITICAL",
    "CAT_FAULT",
    "CAT_MESSAGE",
    "CAT_TASK",
    "CausalProfiler",
    "CriticalPath",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Span",
    "chrome_trace_events",
    "derive_spans",
    "event_from_dict",
    "event_to_dict",
    "export_run",
    "extract_critical_path",
    "load_chrome_trace",
    "profile_report",
    "read_jsonl",
    "span_summary",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_snapshot",
    "write_profile",
    "write_run_manifest",
]
