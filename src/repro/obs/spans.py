"""Span derivation: paired intervals from the section-12 event stream.

Trace events are points in virtual time.  Off-line timing analysis (and
the Chrome trace exporter) wants *intervals*:

* **task lifetime** -- TASK_INIT .. TASK_TERM of one task;
* **message in flight** -- MSG_SEND .. the matching MSG_ACCEPT
  (matched FIFO per (sender, receiver, message type), the same order
  the in-queue guarantees);
* **critical section** -- LOCK .. UNLOCK per (task, lock name).

Events whose closing partner never appears (a task still running at
shutdown, a message never accepted, a lock held at kill) yield *open*
spans with ``end=None``; exporters may drop or clamp them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..core.tracing import TraceEvent, TraceEventType

#: Span categories (the Chrome trace "cat" field).
CAT_TASK = "task"
CAT_MESSAGE = "message"
CAT_CRITICAL = "critical"
CAT_FAULT = "fault"


@dataclass(frozen=True)
class Span:
    """One derived interval in virtual time."""

    name: str
    cat: str
    task: str          # taskid rendered as text (c.s.u)
    pe: int
    start: int
    end: Optional[int] = None
    args: Tuple[Tuple[str, str], ...] = ()

    @property
    def duration(self) -> Optional[int]:
        return None if self.end is None else self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None


def _info_field(info: str, key: str) -> str:
    for tok in info.split():
        if tok.startswith(key + "="):
            return tok.split("=", 1)[1]
    return ""


def derive_spans(events: Iterable[TraceEvent],
                 include_open: bool = False) -> List[Span]:
    """Derive task / message / critical-section spans from trace events.

    The input must be in emission order (the tracer's order); output is
    sorted by (start, cat, name) for deterministic export.
    """
    spans: List[Span] = []
    # open task lifetimes: taskid -> (start event)
    open_tasks: Dict[str, TraceEvent] = {}
    # in-flight messages: (sender, receiver, mtype) -> FIFO of send events
    open_msgs: Dict[Tuple[str, str, str], Deque[TraceEvent]] = {}
    # held locks: (taskid, lock name) -> LOCK event
    open_locks: Dict[Tuple[str, str], TraceEvent] = {}

    for e in events:
        tid = str(e.task)
        if e.etype is TraceEventType.TASK_INIT:
            open_tasks[tid] = e
        elif e.etype is TraceEventType.TASK_TERM:
            start = open_tasks.pop(tid, None)
            if start is not None:
                # Crashed/killed tasks (fault injection, monitor KILL)
                # close with status=aborted rather than leaking open.
                args: Tuple[Tuple[str, str], ...] = ()
                status = _info_field(e.info, "status")
                if status:
                    args = (("status", status),)
                    reason = _info_field(e.info, "reason")
                    if reason:
                        args += (("reason", reason),)
                spans.append(Span(
                    name=_info_field(start.info, "type") or tid,
                    cat=CAT_TASK, task=tid, pe=start.pe,
                    start=start.ticks, end=e.ticks, args=args))
        elif e.etype is TraceEventType.FAULT:
            # Injected faults are zero-width marks: name is the fault
            # kind (the info field reads "kind: detail").
            spans.append(Span(
                name=e.info.split(":", 1)[0].strip() or "fault",
                cat=CAT_FAULT, task=tid, pe=e.pe,
                start=e.ticks, end=e.ticks,
                args=(("detail", e.info),)))
        elif e.etype is TraceEventType.MSG_SEND and e.other is not None:
            key = (tid, str(e.other), _info_field(e.info, "type"))
            open_msgs.setdefault(key, deque()).append(e)
        elif e.etype is TraceEventType.MSG_ACCEPT and e.other is not None:
            key = (str(e.other), tid, _info_field(e.info, "type"))
            q = open_msgs.get(key)
            if q:
                send = q.popleft()
                spans.append(Span(
                    name=key[2] or "message", cat=CAT_MESSAGE,
                    task=key[0], pe=send.pe,
                    start=send.ticks, end=e.ticks,
                    args=(("to", key[1]),)))
        elif e.etype is TraceEventType.LOCK:
            lname = _info_field(e.info, "lock")
            open_locks[(tid, lname)] = e
        elif e.etype is TraceEventType.UNLOCK:
            lname = _info_field(e.info, "lock")
            start = open_locks.pop((tid, lname), None)
            if start is not None:
                spans.append(Span(
                    name=lname or "lock", cat=CAT_CRITICAL, task=tid,
                    pe=start.pe, start=start.ticks, end=e.ticks))

    if include_open:
        for tid, e in open_tasks.items():
            spans.append(Span(name=_info_field(e.info, "type") or tid,
                              cat=CAT_TASK, task=tid, pe=e.pe,
                              start=e.ticks))
        for (sender, receiver, mtype), q in open_msgs.items():
            for e in q:
                spans.append(Span(name=mtype or "message", cat=CAT_MESSAGE,
                                  task=sender, pe=e.pe, start=e.ticks,
                                  args=(("to", receiver),)))
        for (tid, lname), e in open_locks.items():
            spans.append(Span(name=lname or "lock", cat=CAT_CRITICAL,
                              task=tid, pe=e.pe, start=e.ticks))

    spans.sort(key=lambda s: (s.start, s.cat, s.name, s.task))
    return spans


def span_summary(spans: Iterable[Span]) -> Dict[str, Dict[str, int]]:
    """Per-category totals: count and summed duration of closed spans."""
    out: Dict[str, Dict[str, int]] = {}
    for s in spans:
        d = out.setdefault(s.cat, {"count": 0, "total_ticks": 0, "open": 0,
                                   "aborted": 0})
        if s.closed:
            d["count"] += 1
            d["total_ticks"] += s.duration
            if ("status", "aborted") in s.args:
                d["aborted"] += 1
        else:
            d["open"] += 1
    return out
