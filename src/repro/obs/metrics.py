"""The metrics registry: counters, gauges and tick-bucketed histograms.

Section 12 gives PISCES 2 event tracing; section 11 gives the live
monitor.  This module supplies the quantitative layer between the two:
named metric families, each keyed by a small label set (PE, cluster,
tasktype, operation...), collected while the machine runs and read out
as a deterministic snapshot by the monitor, the analysis module and the
exporters.

Design constraints:

* **zero-cost when disabled** -- every instrumentation site in the
  engine guards on ``registry.enabled`` (a single attribute load and
  boolean test) before touching any instrument, so an untraced,
  unmetered run does no metric work at all;
* **deterministic snapshots** -- instruments are keyed by
  ``(family, sorted(labels))``; :meth:`MetricsRegistry.snapshot`
  renders them in sorted order, so two identical runs produce
  byte-identical snapshots (the whole test-suite relies on the engine's
  determinism and this module must not break it);
* **tick-bucketed histograms** -- distributions over virtual ticks or
  bytes bucket into exponential bounds, giving a latency/size view
  without storing samples.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: A canonicalized label set: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, Any], ...]

#: Default histogram bucket upper bounds: roughly one-third-decade
#: exponential steps, wide enough for tick latencies (a send->accept
#: hop is ~10-200 ticks, a striped disk transfer ~1e3-1e5) and byte
#: sizes alike.  A final implicit +inf bucket catches the rest.
DEFAULT_BUCKETS: Tuple[int, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
    100_000, 200_000, 500_000, 1_000_000,
)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


def _scalar(v):
    """Numpy scalars (e.g. ``msg.nbytes``) -> plain Python numbers, so
    snapshots stay JSON-serializable."""
    return v.item() if hasattr(v, "item") else v


def _label_str(key: LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        self.value += _scalar(n)

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time level, with its high-water mark."""

    __slots__ = ("name", "labels", "value", "high_water")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0
        self.high_water = 0

    def set(self, v) -> None:
        v = _scalar(v)
        self.value = v
        if v > self.high_water:
            self.high_water = v

    def inc(self, n=1) -> None:
        self.set(self.value + n)

    def dec(self, n=1) -> None:
        self.value -= n

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value,
                "high_water": self.high_water}


class Histogram:
    """A tick-bucketed distribution: counts per exponential bucket,
    plus exact sum / count / min / max of the observations."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts",
                 "count", "total", "min", "max")

    def __init__(self, name: str, labels: LabelKey,
                 buckets: Tuple[int, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(buckets)
        #: one count per bound, plus the final +inf bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, v) -> None:
        v = _scalar(v)
        self.bucket_counts[bisect.bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Upper bucket bound containing the q-quantile (bucketed, so an
        over-estimate by at most one bucket width)."""
        if not self.count:
            return None
        target = q * self.count
        seen = 0
        for bound, c in zip(self.bounds, self.bucket_counts):
            seen += c
            if seen >= target:
                return float(bound)
        return float(self.max if self.max is not None else self.bounds[-1])

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "histogram", "count": self.count, "sum": self.total,
                "min": self.min, "max": self.max,
                "buckets": {str(b): c for b, c in
                            zip(self.bounds + ("+inf",), self.bucket_counts)
                            if c}}


class MetricsRegistry:
    """All instruments of one VM, keyed by (family name, label set).

    Instruments are created on first use and live for the registry's
    lifetime; the same (name, labels) always returns the same object,
    so hot paths may cache the instrument reference.
    """

    def __init__(self, enabled: bool = True):
        #: Instrumentation sites test this before doing any metric work.
        self.enabled = enabled
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ----------------------------------------------------------- factory --

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, key[1])
        return c

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(self, name: str,
                  buckets: Tuple[int, ...] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        key = (name, _label_key(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, key[1], buckets)
        return h

    # ------------------------------------------------------------- query --

    def families(self) -> List[str]:
        names = {k[0] for k in self._counters}
        names.update(k[0] for k in self._gauges)
        names.update(k[0] for k in self._histograms)
        return sorted(names)

    def counters(self, name: str) -> Dict[LabelKey, Counter]:
        return {k[1]: v for k, v in self._counters.items() if k[0] == name}

    def counter_total(self, name: str) -> int:
        """Sum of one counter family across every label set."""
        return sum(c.value for (n, _), c in self._counters.items()
                   if n == name)

    def histogram_merged(self, name: str) -> Optional[Histogram]:
        """One family's histograms merged across label sets (same
        bucket bounds assumed, as produced by one instrumentation
        site)."""
        parts = [h for (n, _), h in self._histograms.items() if n == name]
        if not parts:
            return None
        merged = Histogram(name, (), parts[0].bounds)
        for h in parts:
            for i, c in enumerate(h.bucket_counts):
                merged.bucket_counts[i] += c
            merged.count += h.count
            merged.total += h.total
            for v in (h.min, h.max):
                if v is None:
                    continue
                if merged.min is None or v < merged.min:
                    merged.min = v
                if merged.max is None or v > merged.max:
                    merged.max = v
        return merged

    # ---------------------------------------------------------- snapshot --

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic nested dict: family -> label-string -> data."""
        out: Dict[str, Dict[str, Any]] = {}
        for store in (self._counters, self._gauges, self._histograms):
            for (name, lkey) in sorted(store, key=lambda k: (k[0], str(k[1]))):
                inst = store[(name, lkey)]
                out.setdefault(name, {})[_label_str(lkey)] = inst.as_dict()
        return {name: out[name] for name in sorted(out)}

    def snapshot_text(self, title: str = "METRICS SNAPSHOT") -> str:
        """The text panel the monitor displays."""
        from ..util.tables import format_table
        rows: List[List[Any]] = []
        for name, by_label in self.snapshot().items():
            for lstr, data in by_label.items():
                if data["type"] == "counter":
                    val = str(data["value"])
                elif data["type"] == "gauge":
                    val = f"{data['value']} (hi {data['high_water']})"
                else:
                    mean = data["sum"] / data["count"] if data["count"] else 0
                    val = (f"n={data['count']} sum={data['sum']} "
                           f"mean={mean:.1f} max={data['max']}")
                rows.append([name + lstr, data["type"], val])
        if not rows:
            return f"{title}: (no metrics recorded)"
        return format_table(["metric", "kind", "value"], rows, title=title)

    def describe(self) -> str:
        n = (len(self._counters) + len(self._gauges) + len(self._histograms))
        state = "enabled" if self.enabled else "disabled"
        return f"metrics: {state}, {n} instruments in {len(self.families())} families"

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: A registry that is permanently disabled -- handed to components whose
#: owner has no registry wired, so instrumentation sites can guard on
#: ``metrics.enabled`` without a None check.
NULL_REGISTRY = MetricsRegistry(enabled=False)
