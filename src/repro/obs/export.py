"""Structured exporters: JSONL event logs, Chrome trace format, text.

Three machine-readable views of a traced run:

* **JSONL** -- one JSON object per trace event, round-trippable back
  into :class:`~repro.core.tracing.TraceEvent` objects for off-line
  analysis (the structured sibling of the section-12 trace file);
* **Chrome trace-event format** -- a JSON array of ``ph: "B"/"E"``
  (task lifetimes) and ``ph: "X"`` (message-in-flight and
  critical-section) events, loadable in Perfetto / chrome://tracing;
  one "process" per PE, one "thread" per task, timestamps in virtual
  ticks;
* **text snapshot** -- the metrics registry rendered for the monitor.

``export_run(vm, directory)`` writes all three for one VM.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, IO, Iterable, List, Optional, Union

from ..core.taskid import TaskId
from ..core.tracing import TraceEvent, TraceEventType
from .metrics import MetricsRegistry
from .spans import CAT_TASK, Span, derive_spans

# ------------------------------------------------------------------ JSONL --


def event_to_dict(e: TraceEvent) -> Dict[str, Any]:
    d: Dict[str, Any] = {"etype": e.etype.value, "task": str(e.task),
                         "pe": int(e.pe), "ticks": int(e.ticks)}
    if e.info:
        d["info"] = e.info
    if e.other is not None:
        d["other"] = str(e.other)
    return d


def event_from_dict(d: Dict[str, Any]) -> TraceEvent:
    return TraceEvent(
        etype=TraceEventType(d["etype"]),
        task=TaskId.parse(d["task"]),
        pe=int(d["pe"]),
        ticks=int(d["ticks"]),
        info=d.get("info", ""),
        other=TaskId.parse(d["other"]) if "other" in d else None,
    )


def write_jsonl(events: Iterable[TraceEvent], f: IO[str]) -> int:
    """Write one JSON object per line; returns the event count."""
    n = 0
    for e in events:
        f.write(json.dumps(event_to_dict(e), sort_keys=True) + "\n")
        n += 1
    return n


def read_jsonl(f: IO[str]) -> List[TraceEvent]:
    """Re-load a JSONL event log written by :func:`write_jsonl`."""
    out = []
    for line in f:
        line = line.strip()
        if line:
            out.append(event_from_dict(json.loads(line)))
    return out


# ----------------------------------------------------------- Chrome trace --


def chrome_trace_events(events: Iterable[TraceEvent]) -> List[Dict[str, Any]]:
    """Trace events as a Chrome trace-event array.

    Task lifetimes become ``B``/``E`` duration pairs; message-in-flight
    and critical-section spans become ``X`` complete events.  ``pid`` is
    the PE number (so Perfetto groups rows by processor) and ``tid`` the
    taskid text; ``ts``/``dur`` are virtual ticks (declared as
    microseconds to the viewer, which only affects the displayed unit).
    """
    out: List[Dict[str, Any]] = []
    seen_pids = set()
    for s in derive_spans(events):
        if not s.closed:
            continue
        common = {"cat": s.cat, "pid": int(s.pe), "tid": s.task}
        if s.cat == CAT_TASK:
            out.append({"name": s.name, "ph": "B", "ts": int(s.start),
                        **common})
            out.append({"name": s.name, "ph": "E", "ts": int(s.end),
                        **common})
        else:
            out.append({"name": s.name, "ph": "X", "ts": int(s.start),
                        "dur": int(s.duration), "args": dict(s.args),
                        **common})
        seen_pids.add(int(s.pe))
    meta = [{"name": "process_name", "ph": "M", "pid": pid, "tid": "",
             "args": {"name": f"PE {pid}"}} for pid in sorted(seen_pids)]
    return meta + out


def write_chrome_trace(events: Iterable[TraceEvent], f: IO[str]) -> int:
    """Write the Chrome trace JSON array; returns the event count."""
    arr = chrome_trace_events(events)
    json.dump(arr, f, sort_keys=True)
    return len(arr)


def load_chrome_trace(f: IO[str]) -> List[Dict[str, Any]]:
    """Load (and sanity-check) a Chrome trace file written above."""
    arr = json.load(f)
    if not isinstance(arr, list):
        raise ValueError("chrome trace must be a JSON array")
    for item in arr:
        if "ph" not in item:
            raise ValueError(f"not a trace event: {item!r}")
    return arr


# ----------------------------------------------------------------- text ----


def write_metrics_snapshot(registry: MetricsRegistry, f: IO[str],
                           as_json: bool = False) -> None:
    """Write the registry snapshot: monitor text, or structured JSON."""
    if as_json:
        json.dump(registry.snapshot(), f, indent=1, sort_keys=True)
        f.write("\n")
    else:
        f.write(registry.snapshot_text() + "\n")


# --------------------------------------------------------------- manifest --


def run_manifest(vm, files: Optional[Dict[str, Path]] = None,
                 ) -> Dict[str, Any]:
    """Self-describing metadata for an exported bundle: enough to know
    exactly which run produced the artifacts next to it."""
    import hashlib

    from .. import __version__ as repro_version
    from ..faults import plan as fault_plan_mod

    plan = vm.faults.plan if getattr(vm, "faults", None) is not None else None
    plan_hash = None
    seed = None
    if plan is not None:
        seed = plan.seed
        plan_hash = hashlib.sha256(
            fault_plan_mod.dumps(plan).encode("utf-8")).hexdigest()
    det = getattr(vm, "race_detector", None)
    manifest: Dict[str, Any] = {
        "repro_version": repro_version,
        "dispatcher": vm.engine.dispatcher,
        "exec_core": vm.engine.exec_core,
        "task_bodies": vm.task_bodies,
        "window_path": vm.window_path,
        "seed": seed,
        "fault_plan_hash": plan_hash,
        "detect_races": det.mode if det is not None else None,
        "profile": vm.profiler is not None,
        "elapsed_ticks": int(vm.machine.clocks.elapsed()),
        # Where the run *stopped*, not just what it started from: the
        # fault plan's cursor (events fired/pending) and the schedule
        # decision counts at export time.  Lets a bundle be matched
        # against the checkpoint that resumed it.
        "fault_plan_cursor": (vm.faults.cursor_state()
                              if getattr(vm, "faults", None) is not None
                              else None),
        "schedule_position": (sh.position()
                              if (sh := getattr(vm, "sched_hook", None))
                              is not None and hasattr(sh, "position")
                              else None),
        "config": {
            "name": vm.config.name,
            "summary": vm.config.describe(),
            "clusters": vm.config.cluster_numbers(),
            "time_limit": vm.config.time_limit,
            "metrics_enabled": vm.config.metrics_enabled,
        },
    }
    if files:
        manifest["files"] = {k: p.name for k, p in sorted(files.items())}
    return manifest


def write_run_manifest(vm, directory: Union[str, Path],
                       files: Optional[Dict[str, Path]] = None) -> Path:
    """Write ``manifest.json`` next to an export bundle's artifacts."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "manifest.json"
    with path.open("w") as f:
        json.dump(run_manifest(vm, files), f, indent=1, sort_keys=True)
        f.write("\n")
    return path


# ------------------------------------------------------------- one-stop ----


def export_run(vm, directory: Union[str, Path],
               prefix: str = "run") -> Dict[str, Path]:
    """Export one VM's observability record into ``directory``.

    Writes ``<prefix>.events.jsonl``, ``<prefix>.chrome.json``,
    ``<prefix>.metrics.json``, ``<prefix>.metrics.txt`` and a
    ``manifest.json`` describing the run (dispatcher, window path,
    fault seed/hash, config summary, repro version); returns the
    written paths keyed by kind.  Requires tracing to have kept events
    in memory for the event-derived files (they are skipped, not
    invented, otherwise).  A VM with profiling enabled also gets the
    profile bundle (see :func:`repro.obs.profile.write_profile`).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    events = list(vm.tracer.events)
    out: Dict[str, Path] = {}

    p = directory / f"{prefix}.events.jsonl"
    with p.open("w") as f:
        write_jsonl(events, f)
    out["jsonl"] = p

    p = directory / f"{prefix}.chrome.json"
    with p.open("w") as f:
        write_chrome_trace(events, f)
    out["chrome"] = p

    p = directory / f"{prefix}.metrics.json"
    with p.open("w") as f:
        write_metrics_snapshot(vm.metrics, f, as_json=True)
    out["metrics_json"] = p

    p = directory / f"{prefix}.metrics.txt"
    with p.open("w") as f:
        write_metrics_snapshot(vm.metrics, f)
    out["metrics_txt"] = p

    det = getattr(vm, "race_detector", None)
    if det is not None:
        p = directory / f"{prefix}.races.jsonl"
        det.export_jsonl(p)
        out["races"] = p

    prof = getattr(vm, "profiler", None)
    if prof is not None:
        from .profile import write_profile
        bundle = write_profile(prof, directory, prefix=f"{prefix}.profile")
        out.update({f"profile_{kind}": p for kind, p in bundle.items()})

    out["manifest"] = write_run_manifest(vm, directory, files=out)
    return out
