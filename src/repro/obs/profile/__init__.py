"""Causal profiling: wait-state accounting, critical path, exporters.

See :mod:`repro.obs.profile.profiler` for the model.  Typical use goes
through :func:`repro.api.profile_run`; the pieces compose directly too:

    vm = make_vm(...)
    prof = vm.enable_profiling()
    result = vm.run(MAIN)
    print(profile_report(prof))
    cp = extract_critical_path(prof)
    write_profile(prof, "out/", critical_path=cp)
"""

from .critical_path import CriticalPath, PathSegment, extract_critical_path
from .export import (
    chrome_profile_trace,
    folded_stacks,
    write_profile,
)
from .profiler import (
    CausalProfiler,
    Slice,
    WaitAccounting,
    WaitInterval,
    WAIT_ACCEPT,
    WAIT_BARRIER,
    WAIT_CATEGORIES,
    WAIT_DISPATCH,
    WAIT_FAULT,
    WAIT_LOCK,
    WAIT_WINDOW,
    profile_report,
    wait_category,
)

__all__ = [
    "CausalProfiler",
    "CriticalPath",
    "PathSegment",
    "Slice",
    "WaitAccounting",
    "WaitInterval",
    "WAIT_ACCEPT",
    "WAIT_BARRIER",
    "WAIT_CATEGORIES",
    "WAIT_DISPATCH",
    "WAIT_FAULT",
    "WAIT_LOCK",
    "WAIT_WINDOW",
    "chrome_profile_trace",
    "extract_critical_path",
    "folded_stacks",
    "profile_report",
    "wait_category",
    "write_profile",
]
