"""Causal profiler: wait-state accounting over the engine's slice stream.

The PISCES 2 monitor (section 11) exists so a programmer can ask *why*
a parallel program is slow, not just *that* it is.  The metrics/spans
layer answers "what happened"; this module answers "what bounded
elapsed time": every blocked tick of every kernel process is attributed
to one of six wait states, rolled up per task type, per cluster and per
PE, and the slice/wake record it keeps is the input to
:mod:`repro.obs.profile.critical_path`.

Wait states
-----------

==================== ==================================================
``lock-wait``        blocked entering a named critical section
``barrier-wait``     barrier arrival/body and force-join waits
``accept-wait``      waiting for a message (ACCEPT, controller queues)
``window-wait``      window-extent overlap waits and striped disk I/O
``dispatch-queue-wait`` runnable but not yet dispatched (PE contention)
``fault-recovery``   accept retries after a fault, and killed processes
==================== ==================================================

Zero virtual time
-----------------

The profiler is an engine hook (``engine.prof_hook``), a pure observer
on the same channel as the race detector and the schedule recorder: it
never charges ticks, never wakes or blocks anything, and never touches
scheduling state.  With profiling off the cost is one attribute test
per site; with it on, every hook is a few list appends.  The
``benchmarks/test_profile_overhead.py`` gate asserts bit-identical
elapsed virtual time and trace streams with profiling on and off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ...mmos.process import KernelProcess, ProcState

#: The six wait-state categories (stable slugs, used as metric labels).
WAIT_LOCK = "lock-wait"
WAIT_BARRIER = "barrier-wait"
WAIT_ACCEPT = "accept-wait"
WAIT_WINDOW = "window-wait"
WAIT_DISPATCH = "dispatch-queue-wait"
WAIT_FAULT = "fault-recovery"

WAIT_CATEGORIES = (WAIT_LOCK, WAIT_BARRIER, WAIT_ACCEPT, WAIT_WINDOW,
                   WAIT_DISPATCH, WAIT_FAULT)


def wait_category(reason: str) -> str:
    """Map an engine block-reason string to its wait-state category.

    Every wait site in the runtime names its reason (``critical(NAME)``,
    ``barrier(gen N)``, ``accept(types)``, ``window-overlap-wait``...);
    the mapping below is the single place those names are interpreted.
    Accept retries after a fault carry a ``retry`` marker inside the
    ``accept(`` prefix (the prefix itself is load-bearing: the VM's
    receiver wake-up matches on it), so post-fault re-waits are charged
    to recovery, not to ordinary message latency.
    """
    if reason.startswith("critical("):
        return WAIT_LOCK
    if reason.startswith("barrier") or reason == "force-join":
        return WAIT_BARRIER
    if reason.startswith("accept(retry"):
        return WAIT_FAULT
    if reason.startswith("accept("):
        return WAIT_ACCEPT
    if reason in ("window-overlap-wait", "disk-io"):
        return WAIT_WINDOW
    if reason == "killed":
        return WAIT_FAULT
    if reason.endswith("-wait"):
        # Controller message waits (tcontr-wait, ucontr-wait, ...): the
        # daemon's equivalent of an ACCEPT.
        return WAIT_ACCEPT
    return WAIT_DISPATCH


def _split_name(name: str) -> Tuple[str, Optional[int]]:
    """``JWORKER@1.3.1`` -> (``JWORKER``, cluster 1); force members
    (``JFORCE@1.2.0#f3``) and controllers (``tcontr@1.1.0``) parse the
    same way.  Returns (label, None) when no cluster is encoded."""
    label, sep, rest = name.partition("@")
    if not sep:
        return name, None
    rest = rest.partition("#")[0]
    head = rest.partition(".")[0]
    try:
        return label, int(head)
    except ValueError:
        return label, None


# Pending-transition records, one per process, consumed by the next
# on_slice.  Tuples keep the hot path allocation-light:
#   ("spawn", parent_pid|None, ready_at)
#   ("ready", prev_end, reason)            reason=="killed" after a kill
#   ("blocked", reason, t_block, deadline)
#   ("woken", reason, t_block, wake_time, waker_pid|None)
#   ("killed", reason, t_block, kill_time)


@dataclass(frozen=True)
class Slice:
    """One executed slice, with the cause that made its process
    runnable.  ``cause`` mirrors the pending-transition tuples above
    with times resolved (see :class:`CausalProfiler`)."""

    seq: int
    pid: int
    name: str
    pe: int
    start: int
    end: int
    wall: float
    new_state: str          # "ready" | "blocked" | "done"
    cause: Tuple[Any, ...]

    @property
    def cost(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class WaitInterval:
    """One attributed wait: ``proc`` spent [start, end) in ``category``
    (blocked on ``reason``, or queued when dispatch-queue-wait)."""

    pid: int
    name: str
    pe: int
    category: str
    reason: str
    start: int
    end: int

    @property
    def ticks(self) -> int:
        return self.end - self.start


class _ProcRecord:
    """Per-process slice/wait storage (internal)."""

    __slots__ = ("pid", "name", "pe", "daemon", "slices", "waits", "pending")

    def __init__(self, p: KernelProcess):
        self.pid = p.pid
        self.name = p.name
        self.pe = p.pe
        self.daemon = p.daemon
        self.slices: List[Slice] = []
        self.waits: List[WaitInterval] = []
        self.pending: Optional[Tuple[Any, ...]] = None


class CausalProfiler:
    """Engine hook recording slices, wakes and attributed waits.

    Install with ``engine.prof_hook = profiler`` (the VM's
    ``enable_profiling()`` does this).  All analysis -- accounting,
    rollups, the critical path -- reads the recorded data after the run;
    the hooks themselves only append.
    """

    def __init__(self) -> None:
        self._recs: Dict[int, _ProcRecord] = {}
        self._slice_seq = 0

    # ------------------------------------------------------ engine hooks --

    def _rec(self, p: KernelProcess) -> _ProcRecord:
        r = self._recs.get(p.pid)
        if r is None:
            r = self._recs[p.pid] = _ProcRecord(p)
        return r

    def on_spawn(self, parent: Optional[KernelProcess],
                 p: KernelProcess) -> None:
        r = self._rec(p)
        r.pending = ("spawn", parent.pid if parent is not None else None,
                     int(p.ready_time))

    def on_wake(self, waker: Optional[KernelProcess], p: KernelProcess,
                at: int) -> None:
        r = self._recs.get(p.pid)
        if r is None or r.pending is None or r.pending[0] != "blocked":
            return
        _, reason, t_block, _dl = r.pending
        r.pending = ("woken", reason, t_block, max(int(at), t_block),
                     waker.pid if waker is not None else None)

    def on_kill(self, p: KernelProcess, at: int) -> None:
        r = self._recs.get(p.pid)
        if r is None or r.pending is None or r.pending[0] != "blocked":
            return
        _, reason, t_block, _dl = r.pending
        r.pending = ("killed", reason, t_block, max(int(at), t_block))

    def on_slice(self, p: KernelProcess, start: int, end: int,
                 new_state: ProcState, reason: str,
                 deadline: Optional[int], wall: float) -> None:
        # Charges can arrive as numpy integers (window byte counts feed
        # compute costs); coerce once here so every downstream record --
        # and the JSON exporters -- hold plain ints.
        start, end = int(start), int(end)
        if deadline is not None:
            deadline = int(deadline)
        r = self._rec(p)
        cause = self._resolve_pending(r, start)
        self._slice_seq += 1
        r.slices.append(Slice(
            seq=self._slice_seq, pid=r.pid, name=r.name, pe=r.pe,
            start=start, end=end, wall=wall,
            new_state=new_state.value, cause=cause))
        if new_state is ProcState.DONE:
            r.pending = None
        elif new_state is ProcState.READY:
            r.pending = ("ready", end, reason)
        else:
            r.pending = ("blocked", reason, end, deadline)

    # -------------------------------------------------- wait attribution --

    def _wait(self, r: _ProcRecord, category: str, reason: str,
              t0: int, t1: int) -> None:
        if t1 > t0:
            r.waits.append(WaitInterval(
                pid=r.pid, name=r.name, pe=r.pe, category=category,
                reason=reason, start=t0, end=t1))

    def _resolve_pending(self, r: _ProcRecord, start: int) -> Tuple[Any, ...]:
        """Turn the pending transition into wait intervals ending at the
        dispatch ``start``, and return the slice's cause tuple."""
        pending = r.pending
        r.pending = None
        if pending is None:
            # First slice of a process whose spawn predates profiling
            # (profiler attached mid-run): no attribution possible.
            return ("spawn", None, start)
        kind = pending[0]
        if kind == "spawn":
            _, parent_pid, ready_at = pending
            self._wait(r, WAIT_DISPATCH, "queued", min(ready_at, start), start)
            return pending
        if kind == "ready":
            _, prev_end, reason = pending
            cat = WAIT_FAULT if reason == "killed" else WAIT_DISPATCH
            self._wait(r, cat, reason or "queued", min(prev_end, start), start)
            return pending
        if kind == "woken":
            _, reason, t_block, t_wake, waker_pid = pending
            t_wake = min(t_wake, start)
            self._wait(r, wait_category(reason), reason, t_block, t_wake)
            self._wait(r, WAIT_DISPATCH, "queued", t_wake, start)
            return pending
        if kind == "killed":
            _, reason, t_block, t_kill = pending
            t_kill = min(t_kill, start)
            self._wait(r, wait_category(reason), reason, t_block, t_kill)
            self._wait(r, WAIT_FAULT, "killed", t_kill, start)
            return pending
        # "blocked" with a deadline that fired: the wait up to the
        # deadline belongs to the block reason (a DELAY, an I/O
        # completion time...), the remainder is queueing.
        _, reason, t_block, deadline = pending
        resume = start if deadline is None else min(deadline, start)
        self._wait(r, wait_category(reason), reason, t_block, resume)
        self._wait(r, WAIT_DISPATCH, "queued", resume, start)
        return ("timeout", resume, reason, t_block)

    # ----------------------------------------------------------- queries --

    def processes(self) -> List[_ProcRecord]:
        """Per-process records, ordered by pid (creation order)."""
        return [self._recs[pid] for pid in sorted(self._recs)]

    def slices(self) -> List[Slice]:
        """Every recorded slice in engine dispatch-completion order."""
        out = [s for r in self.processes() for s in r.slices]
        out.sort(key=lambda s: s.seq)
        return out

    def waits(self) -> List[WaitInterval]:
        """Every attributed wait, ordered (start, pid)."""
        out = [w for r in self.processes() for w in r.waits]
        out.sort(key=lambda w: (w.start, w.pid, w.end))
        return out

    def elapsed(self) -> int:
        """Last recorded slice end (== the run's elapsed virtual time
        once the run has finished)."""
        return max((s.end for r in self._recs.values() for s in r.slices),
                   default=0)

    def total_work(self) -> int:
        return sum(s.cost for r in self._recs.values() for s in r.slices)

    def accounting(self) -> "WaitAccounting":
        return WaitAccounting.from_profiler(self)

    def utilization_timeline(self, n_buckets: int = 24,
                             elapsed: Optional[int] = None,
                             ) -> Dict[int, List[float]]:
        """Per-PE busy fraction per equal-width virtual-time bucket."""
        if elapsed is None:
            elapsed = self.elapsed()
        if elapsed <= 0 or n_buckets <= 0:
            return {}
        busy: Dict[int, List[float]] = {}
        width = elapsed / n_buckets
        for r in self.processes():
            for s in r.slices:
                row = busy.setdefault(s.pe, [0.0] * n_buckets)
                lo, hi = s.start, min(s.end, elapsed)
                b = int(lo / width)
                while b < n_buckets and lo < hi:
                    edge = min(hi, (b + 1) * width)
                    row[b] += edge - lo
                    lo = edge
                    b += 1
        return {pe: [min(1.0, t / width) for t in row]
                for pe, row in sorted(busy.items())}

    def publish_metrics(self, registry, elapsed: Optional[int] = None) -> None:
        """Roll the wait accounting up into a metrics registry:
        ``wait_ticks_task{category,task}``, ``wait_ticks_cluster``,
        ``wait_ticks_pe`` counters plus ``pe_utilization_pct`` and
        ``pe_busy_ticks`` gauges."""
        if registry is None or not registry.enabled:
            return
        acct = self.accounting()
        for (task, cat), t in sorted(acct.by_task.items()):
            registry.counter("wait_ticks_task", task=task, category=cat).inc(t)
        for (cluster, cat), t in sorted(acct.by_cluster.items()):
            registry.counter("wait_ticks_cluster", cluster=cluster,
                             category=cat).inc(t)
        for (pe, cat), t in sorted(acct.by_pe.items()):
            registry.counter("wait_ticks_pe", pe=pe, category=cat).inc(t)
        if elapsed is None:
            elapsed = self.elapsed()
        for pe, ticks in sorted(acct.busy_by_pe.items()):
            registry.gauge("pe_busy_ticks", pe=pe).set(ticks)
            if elapsed > 0:
                registry.gauge("pe_utilization_pct", pe=pe).set(
                    round(100.0 * ticks / elapsed, 1))


@dataclass
class WaitAccounting:
    """Wait-state rollups: total blocked ticks by category, and by
    (task label, category), (cluster, category), (PE, category); plus
    per-PE busy ticks from the slice record."""

    totals: Dict[str, int]
    by_task: Dict[Tuple[str, str], int]
    by_cluster: Dict[Tuple[int, str], int]
    by_pe: Dict[Tuple[int, str], int]
    busy_by_pe: Dict[int, int]

    @classmethod
    def from_profiler(cls, prof: CausalProfiler) -> "WaitAccounting":
        totals: Dict[str, int] = {}
        by_task: Dict[Tuple[str, str], int] = {}
        by_cluster: Dict[Tuple[int, str], int] = {}
        by_pe: Dict[Tuple[int, str], int] = {}
        busy: Dict[int, int] = {}
        for r in prof.processes():
            label, cluster = _split_name(r.name)
            for w in r.waits:
                t = w.ticks
                totals[w.category] = totals.get(w.category, 0) + t
                k = (label, w.category)
                by_task[k] = by_task.get(k, 0) + t
                if cluster is not None:
                    kc = (cluster, w.category)
                    by_cluster[kc] = by_cluster.get(kc, 0) + t
                kp = (w.pe, w.category)
                by_pe[kp] = by_pe.get(kp, 0) + t
            for s in r.slices:
                busy[s.pe] = busy.get(s.pe, 0) + s.cost
        return cls(totals=totals, by_task=by_task, by_cluster=by_cluster,
                   by_pe=by_pe, busy_by_pe=busy)

    @property
    def total_wait_ticks(self) -> int:
        return sum(self.totals.values())


_SPARK = " .:-=+*#%@"


def _sparkline(row: Iterable[float]) -> str:
    out = []
    for f in row:
        i = min(len(_SPARK) - 1, int(f * (len(_SPARK) - 1) + 0.5))
        out.append(_SPARK[i])
    return "".join(out)


def profile_report(prof: CausalProfiler, elapsed: Optional[int] = None,
                   n_pes: Optional[int] = None, top: int = 5) -> str:
    """The monitor/report text panel: wait states, per-PE utilization
    timeline, efficiency summary and the critical path's top segments."""
    from .critical_path import extract_critical_path
    if elapsed is None:
        elapsed = prof.elapsed()
    acct = prof.accounting()
    lines = ["CAUSAL PROFILE (virtual time)"]
    work = prof.total_work()
    pes = sorted(acct.busy_by_pe)
    if n_pes is None:
        n_pes = len(pes) or 1
    par = work / elapsed if elapsed else 0.0
    eff = par / n_pes if n_pes else 0.0
    lines.append(f"  elapsed {elapsed} ticks, work {work} ticks on "
                 f"{n_pes} PEs: parallelism {par:.2f}x, "
                 f"efficiency {eff:.0%}")
    total_wait = acct.total_wait_ticks
    lines.append(f"  wait states ({total_wait} blocked ticks):")
    for cat in WAIT_CATEGORIES:
        t = acct.totals.get(cat, 0)
        if t:
            pct = 100.0 * t / total_wait if total_wait else 0.0
            lines.append(f"    {cat:<20} {t:>10}  {pct:5.1f}%")
    if not total_wait:
        lines.append("    (no waits recorded)")
    timeline = prof.utilization_timeline(elapsed=elapsed)
    if timeline:
        lines.append("  per-PE utilization (run left to right):")
        for pe, row in timeline.items():
            busy = acct.busy_by_pe.get(pe, 0)
            pct = 100.0 * busy / elapsed if elapsed else 0.0
            lines.append(f"    PE{pe:<3} {pct:5.1f}%  |{_sparkline(row)}|")
    cp = extract_critical_path(prof, elapsed=elapsed)
    lines.append(cp.summary_text(top=top))
    return "\n".join(lines)
