"""Critical-path extraction over the profiler's slice/wake record.

The happens-before sources the engine exposes to its hooks -- spawn
edges, wake edges (which carry every barrier release, message arrival,
lock hand-off and force join) and deadline resumptions -- form a DAG
over executed slices.  Walking that DAG *backward* from the run's final
event yields the causal critical path: the one chain of work and wait
segments whose lengths sum exactly to elapsed virtual time.  Shortening
anything off this path cannot shrink the run; the "top segments" table
below is therefore the profiler's what-if answer.

Walk rules (each step covers virtual time [t_lo, t_hi) and lowers
t_hi, so segments tile [0, elapsed] with no gaps or overlaps):

* a slice contributes a **work** segment clipped to the uncovered
  range;
* a deadline resumption (DELAY, disk I/O, window overlap) contributes
  the **wait** up to the deadline -- those waits really bound the run;
* a wake edge jumps to the *waker's* slice containing the wake time:
  the wakee's blocked interval is NOT on the path (the waker bounds
  it), but the work segment that released it is annotated with the
  wait category it resolved, so a barrier-bound run reads as
  "straggler work releasing barrier-wait";
* a wake whose time falls after the waker's slice (message transit
  latency) contributes the transit as a wait of the wakee's category;
* dispatch gaps (runnable but queued behind the PE) contribute
  **dispatch-queue-wait** segments.

Everything here is derived from virtual timestamps and engine dispatch
order only -- wall-clock measurements never influence the path -- so
the path is bit-identical across the ``indexed``/``scan``/``replay``
dispatchers and the ``fast``/``reference`` window paths.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .profiler import (
    CausalProfiler,
    Slice,
    WAIT_DISPATCH,
    WAIT_FAULT,
    wait_category,
)


@dataclass(frozen=True)
class PathSegment:
    """One segment of the critical path: ``kind`` is ``work`` or
    ``wait``; ``label`` is the task label (work) or wait category
    (wait); ``detail`` carries the block reason or release note."""

    kind: str
    start: int
    end: int
    process: str
    pe: int
    label: str
    detail: str = ""

    @property
    def ticks(self) -> int:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The extracted path plus the run's efficiency summary."""

    segments: List[PathSegment]     # ordered by start, tiling [0, elapsed]
    elapsed: int
    total_work: int                 # sum of all slice costs, every PE
    n_pes: int

    @property
    def path_work_ticks(self) -> int:
        return sum(s.ticks for s in self.segments if s.kind == "work")

    @property
    def path_wait_ticks(self) -> int:
        return sum(s.ticks for s in self.segments if s.kind == "wait")

    @property
    def parallelism(self) -> float:
        """Achieved parallelism: total work / elapsed."""
        return self.total_work / self.elapsed if self.elapsed else 0.0

    @property
    def efficiency(self) -> float:
        """Achieved parallelism over the machine's PE count."""
        return self.parallelism / self.n_pes if self.n_pes else 0.0

    def top_segments(self, n: int = 5) -> List[PathSegment]:
        """The ``n`` longest path segments (the what-if table rows):
        a segment's length is an upper bound on how much elapsed time
        shrinks if it were free."""
        return sorted(self.segments, key=lambda s: (-s.ticks, s.start))[:n]

    def what_if(self, n: int = 5) -> List[Dict[str, Any]]:
        rows = []
        for s in self.top_segments(n):
            saving = s.ticks / self.elapsed if self.elapsed else 0.0
            rows.append({
                "kind": s.kind, "label": s.label, "process": s.process,
                "pe": s.pe, "start": s.start, "end": s.end,
                "ticks": s.ticks, "detail": s.detail,
                "max_elapsed_saving_pct": round(100.0 * saving, 1),
            })
        return rows

    def summary_text(self, top: int = 5) -> str:
        lines = [f"  critical path: {len(self.segments)} segments, "
                 f"work {self.path_work_ticks} "
                 f"wait {self.path_wait_ticks} "
                 f"(of {self.elapsed} elapsed)"]
        lines.append(f"  top {top} path segments (upper-bound elapsed "
                     f"saving if free):")
        for i, row in enumerate(self.what_if(top), 1):
            note = f" ({row['detail']})" if row["detail"] else ""
            lines.append(
                f"    {i}. {row['kind']:<4} {row['label']:<22} "
                f"{row['process']:<18} PE{row['pe']:<3} "
                f"{row['ticks']:>8} ticks  "
                f"-{row['max_elapsed_saving_pct']:.1f}%{note}")
        if len(self.segments) == 0:
            lines.append("    (empty run)")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "elapsed": self.elapsed,
            "total_work": self.total_work,
            "n_pes": self.n_pes,
            "parallelism": round(self.parallelism, 4),
            "efficiency": round(self.efficiency, 4),
            "path_work_ticks": self.path_work_ticks,
            "path_wait_ticks": self.path_wait_ticks,
            "what_if_top5": self.what_if(5),
            "segments": [{
                "kind": s.kind, "start": s.start, "end": s.end,
                "process": s.process, "pe": s.pe, "label": s.label,
                "detail": s.detail,
            } for s in self.segments],
        }


class _Walker:
    """Backward walk state: emits segments with a falling cover bound
    ``t_hi`` so the output tiles [0, elapsed] exactly."""

    def __init__(self, elapsed: int):
        self.t_hi = elapsed
        self.segments: List[PathSegment] = []
        self.release_note = ""      # annotation for the next work segment

    def emit(self, kind: str, t_lo: int, process: str, pe: int,
             label: str, detail: str = "") -> None:
        t_lo = max(0, t_lo)
        if t_lo < self.t_hi:
            self.segments.append(PathSegment(
                kind=kind, start=t_lo, end=self.t_hi, process=process,
                pe=pe, label=label, detail=detail))
            self.t_hi = t_lo
        else:
            self.t_hi = min(self.t_hi, max(t_lo, 0))


def _slice_index(slices: List[Slice], t: int) -> Optional[int]:
    """Index of the latest slice with start <= t (None if t predates
    the process's first slice)."""
    starts = [s.start for s in slices]
    i = bisect.bisect_right(starts, t) - 1
    return i if i >= 0 else None


def extract_critical_path(prof: CausalProfiler,
                          elapsed: Optional[int] = None) -> CriticalPath:
    """Walk the HB DAG backward from the final slice to the run start."""
    by_pid: Dict[int, List[Slice]] = {
        r.pid: r.slices for r in prof.processes() if r.slices}
    all_slices = prof.slices()
    n_pes = len({s.pe for s in all_slices}) or 1
    total_work = prof.total_work()
    # Callers pass RunResult.elapsed, which can be a numpy integer when
    # charges came from array sizes; the path must hold plain ints.
    elapsed = prof.elapsed() if elapsed is None else int(elapsed)
    if not all_slices or elapsed <= 0:
        return CriticalPath(segments=[], elapsed=elapsed or 0,
                            total_work=total_work, n_pes=n_pes)

    # Final event: the slice with the greatest end tick; ties resolved
    # by engine dispatch-completion order (seq), which is itself part of
    # the deterministic virtual history.
    last = max(all_slices, key=lambda s: (s.end, s.seq))
    w = _Walker(elapsed)
    cur: Optional[Tuple[List[Slice], int]] = (
        by_pid[last.pid], by_pid[last.pid].index(last))
    visited = set()
    budget = 2 * len(all_slices) + 16

    while cur is not None and w.t_hi > 0 and budget > 0:
        budget -= 1
        slices, i = cur
        s = slices[i]
        if (s.pid, i) in visited:
            break
        visited.add((s.pid, i))
        label = s.name.partition("@")[0]
        w.emit("work", s.start, s.name, s.pe, label, w.release_note)
        w.release_note = ""
        cur = _predecessor(w, prof, by_pid, slices, i, s)

    if w.t_hi > 0:
        # Uncovered prefix (bootstrap before the first recorded slice).
        w.emit("wait", 0, "(startup)", -1, WAIT_DISPATCH, "run start")
    segs = list(reversed(w.segments))
    return CriticalPath(segments=segs, elapsed=elapsed,
                        total_work=total_work, n_pes=n_pes)


def _predecessor(w: _Walker, prof: CausalProfiler,
                 by_pid: Dict[int, List[Slice]],
                 slices: List[Slice], i: int, s: Slice,
                 ) -> Optional[Tuple[List[Slice], int]]:
    """Emit the wait segments between slice ``s`` and its causal
    predecessor, and return that predecessor's (slices, index)."""
    cause = s.cause
    kind = cause[0]
    own_prev = (slices, i - 1) if i > 0 else None

    if kind == "spawn":
        _, parent_pid, ready_at = cause
        w.emit("wait", ready_at, s.name, s.pe, WAIT_DISPATCH, "spawn queue")
        if parent_pid is not None and parent_pid in by_pid:
            j = _slice_index(by_pid[parent_pid], w.t_hi)
            if j is not None:
                return (by_pid[parent_pid], j)
        return own_prev

    if kind == "ready":
        _, prev_end, reason = cause
        cat = WAIT_FAULT if reason == "killed" else WAIT_DISPATCH
        w.emit("wait", prev_end, s.name, s.pe, cat, reason or "preempted")
        return own_prev

    if kind == "timeout":
        _, resume, reason, t_block = cause
        w.emit("wait", resume, s.name, s.pe, WAIT_DISPATCH, "queued")
        w.emit("wait", t_block, s.name, s.pe, wait_category(reason), reason)
        return own_prev

    if kind == "killed":
        _, reason, t_block, t_kill = cause
        w.emit("wait", t_kill, s.name, s.pe, WAIT_FAULT, "killed")
        w.emit("wait", t_block, s.name, s.pe, wait_category(reason), reason)
        return own_prev

    if kind == "woken":
        _, reason, t_block, t_wake, waker_pid = cause
        cat = wait_category(reason)
        w.emit("wait", t_wake, s.name, s.pe, WAIT_DISPATCH, "queued")
        waker_slices = by_pid.get(waker_pid) if waker_pid is not None else None
        j = (_slice_index(waker_slices, t_wake)
             if waker_slices is not None else None)
        if j is not None and waker_slices[j].start == t_wake \
                and waker_slices[j].end > t_wake:
            # A slice that *begins* at the wake instant and runs past it
            # executes after the wake (it may itself be downstream of
            # this very wait, a cycle): the wake was performed at the
            # boundary, i.e. at the end of the waker's previous slice.
            j = j - 1 if j > 0 else None
        if j is None:
            # External wake (monitor / fault pump): nothing bounds the
            # wait but the wait itself.
            w.emit("wait", t_block, s.name, s.pe, cat, reason)
            return own_prev
        ws = waker_slices[j]
        if t_wake > ws.end:
            # Message transit: the wake lands after the waker's slice.
            w.emit("wait", ws.end, s.name, s.pe, cat,
                   f"{reason} (transit)")
        w.release_note = f"released {cat} of {s.name}"
        return (waker_slices, j)

    return own_prev
