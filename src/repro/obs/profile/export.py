"""Profile exporters: folded stacks and Chrome trace with wait slices.

Two external formats plus the bundle writer:

* **folded stacks** (``PE;process;frame count`` lines) feed any
  flamegraph renderer.  The *virtual* variant counts ticks and includes
  the attributed wait states as child frames, so the flame shows where
  blocked time went; the *wall* variant counts microseconds of real
  slice execution (the numpy work inside compute charges), work only.
* **Chrome trace** (``chrome://tracing`` / Perfetto JSON): one complete
  ``X`` event per slice on its PE row, and one colored ``X`` event per
  attributed wait interval -- wait categories map to stable ``cname``
  colors so a barrier-bound run is visibly one color.

Writers are deterministic: same run, same bytes (the wall-folded file
excepted, since wall times are measured).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .critical_path import CriticalPath, extract_critical_path
from .profiler import CausalProfiler, profile_report

#: Chrome trace-viewer reserved color names per wait category.
WAIT_COLORS = {
    "lock-wait": "terrible",
    "barrier-wait": "bad",
    "accept-wait": "good",
    "window-wait": "thread_state_iowait",
    "dispatch-queue-wait": "grey",
    "fault-recovery": "black",
}


def folded_stacks(prof: CausalProfiler, mode: str = "virtual") -> List[str]:
    """Flamegraph input lines, sorted for deterministic output.

    ``virtual``: one frame stack ``PE<i>;<process>;work`` per slice
    (ticks) and ``PE<i>;<process>;wait;<category>`` per attributed wait
    (ticks).  ``wall``: work frames only, weighted by measured slice
    microseconds.
    """
    if mode not in ("virtual", "wall"):
        raise ValueError(f"folded_stacks mode {mode!r}: "
                         "must be 'virtual' or 'wall'")
    agg: Dict[str, int] = {}
    for r in prof.processes():
        for s in r.slices:
            key = f"PE{s.pe};{s.name};work"
            weight = s.cost if mode == "virtual" else int(s.wall * 1e6)
            if weight > 0:
                agg[key] = agg.get(key, 0) + weight
        if mode == "virtual":
            for w in r.waits:
                key = f"PE{w.pe};{w.name};wait;{w.category}"
                if w.ticks > 0:
                    agg[key] = agg.get(key, 0) + w.ticks
    return [f"{k} {v}" for k, v in sorted(agg.items())]


def chrome_profile_trace(prof: CausalProfiler) -> List[Dict[str, Any]]:
    """Chrome-trace event list: slices as ``X`` events, waits as
    colored ``X`` events, grouped per PE (pid) and process (tid)."""
    events: List[Dict[str, Any]] = []
    pes = sorted({s.pe for r in prof.processes() for s in r.slices}
                 | {w.pe for r in prof.processes() for w in r.waits})
    for pe in pes:
        events.append({"ph": "M", "name": "process_name", "pid": pe,
                       "args": {"name": f"PE {pe}"}})
    for r in prof.processes():
        for s in r.slices:
            events.append({
                "ph": "X", "name": s.name.partition("@")[0], "cat": "work",
                "pid": s.pe, "tid": s.name,
                "ts": s.start, "dur": s.cost,
                "args": {"state_after": s.new_state},
            })
        for w in r.waits:
            ev = {
                "ph": "X", "name": w.category, "cat": "wait",
                "pid": w.pe, "tid": w.name,
                "ts": w.start, "dur": w.ticks,
                "args": {"reason": w.reason},
            }
            color = WAIT_COLORS.get(w.category)
            if color:
                ev["cname"] = color
            events.append(ev)
    events.sort(key=lambda e: (e.get("ts", -1), e["pid"],
                               str(e.get("tid", "")), e["name"]))
    return events


def write_profile(prof: CausalProfiler,
                  directory: Union[str, Path],
                  prefix: str = "profile",
                  elapsed: Optional[int] = None,
                  critical_path: Optional[CriticalPath] = None,
                  ) -> Dict[str, Path]:
    """Write the full profile bundle into ``directory``:

    ``<prefix>.folded.txt``         virtual-time folded stacks
    ``<prefix>.wall.folded.txt``    wall-time folded stacks
    ``<prefix>.chrome.json``        Chrome trace with wait slices
    ``<prefix>.critical_path.json`` path segments + efficiency summary
    ``<prefix>.txt``                the human-readable report panel
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if critical_path is None:
        critical_path = extract_critical_path(prof, elapsed=elapsed)
    paths = {
        "folded": directory / f"{prefix}.folded.txt",
        "wall_folded": directory / f"{prefix}.wall.folded.txt",
        "chrome": directory / f"{prefix}.chrome.json",
        "critical_path": directory / f"{prefix}.critical_path.json",
        "report": directory / f"{prefix}.txt",
    }
    paths["folded"].write_text(
        "\n".join(folded_stacks(prof, "virtual")) + "\n")
    paths["wall_folded"].write_text(
        "\n".join(folded_stacks(prof, "wall")) + "\n")
    paths["chrome"].write_text(json.dumps(
        {"traceEvents": chrome_profile_trace(prof),
         "displayTimeUnit": "ns"}, indent=1))
    paths["critical_path"].write_text(
        json.dumps(critical_path.as_dict(), indent=1))
    paths["report"].write_text(
        profile_report(prof, elapsed=elapsed) + "\n")
    return paths
