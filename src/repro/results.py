"""The common surface of every run-result object the api returns.

``run_app`` / ``record_run`` / ``profile_run`` / ``check_races`` /
``restore_vm`` each return a different record type, but all of them
answer the same three questions the same way:

* ``.elapsed`` -- virtual ticks attributed to the run;
* ``.vm``      -- the :class:`~repro.core.vm.PiscesVM` behind it;
* ``.export(directory)`` -- write the observability record (trace
  JSONL, Chrome trace, metrics snapshots, race/profile bundles when
  present) via :func:`repro.obs.export.export_run`.

:class:`RunRecord` is that contract.  ``elapsed`` and ``vm`` fall back
to ``self.result`` -- a record that carries a nested
:class:`~repro.core.vm.RunResult` gets them for free, while a record
that stores either directly (the ``RunResult`` itself,
``RestoredRun.vm``) or defines its own property keeps its value.  The
fallback lives in ``__getattr__`` rather than descriptors so dataclass
subclasses can still declare ``elapsed``/``vm`` as ordinary fields.
This module imports nothing from the rest of the package at import
time, so every layer (core, checkpoint, api) can inherit from it
without cycles.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Union

#: Attributes delegated to ``self.result`` when the record does not
#: store them itself.
_DELEGATED = ("elapsed", "vm")


class RunRecord:
    """Base class unifying the api's result objects."""

    def __getattr__(self, name: str) -> Any:
        if name in _DELEGATED:
            result = self.__dict__.get("result")
            if result is not None:
                return getattr(result, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def export(self, directory: Union[str, Path],
               prefix: str = "run") -> Dict[str, Path]:
        """Write this run's observability record into ``directory``;
        returns the written paths keyed by kind."""
        from .obs.export import export_run
        return export_run(self.vm, directory, prefix=prefix)
