"""Small shared utilities."""

from .tables import format_table

__all__ = ["format_table"]
