"""Plain-text table formatting for displays, reports and benchmarks."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned monospace table.

    Numbers are right-aligned, everything else left-aligned; floats are
    shown with 4 significant digits unless already strings.
    """
    def cell(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    srows: List[List[str]] = [[cell(v) for v in r] for r in rows]
    cols = len(headers)
    for r in srows:
        if len(r) != cols:
            raise ValueError(f"row {r} has {len(r)} cells, expected {cols}")
    widths = [len(h) for h in headers]
    for r in srows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))

    def numeric(col: int) -> bool:
        return all(not r or _is_num(rows[j][col])
                   for j, r in enumerate(srows))

    def _is_num(v: Any) -> bool:
        return isinstance(v, (int, float)) and not isinstance(v, bool)

    aligns = [numeric(i) for i in range(cols)]

    def fmt_row(cells: Sequence[str]) -> str:
        out = []
        for i, c in enumerate(cells):
            out.append(c.rjust(widths[i]) if aligns[i] else c.ljust(widths[i]))
        return "  ".join(out).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    for r in srows:
        lines.append(fmt_row(r))
    return "\n".join(lines)
