"""Periodic checkpointing: the engine's ``_ckpt_pump`` hook.

Installed by :class:`~repro.core.vm.PiscesVM` when
``Configuration.checkpoint_every`` (or ``PISCES_CHECKPOINT=``) is set.
The pump runs at the top of every engine step, *before* the dispatcher
picks -- the one point where the VM is between dispatches and the state
digest is well-defined.  An unchecked run pays a single attribute test
per step.

Checkpoint marks are derived from virtual time, not from "every N
pumps": the next mark after ``now`` is ``(now // every + 1) * every``.
That makes the mark sequence a pure function of the virtual clock, so
a restored run re-crosses the *same* marks during its replay and
rewrites byte-identical bundles -- re-checkpointing composes across
crash/restore cycles.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional, Union

from ..errors import CheckpointError
from .format import checkpoint_filename
from .restore import checkpoint_vm


class PeriodicCheckpointer:
    """Write a ``.pckpt`` bundle every ``every`` virtual ticks."""

    def __init__(self, vm, every: int, directory: Union[str, Path] = ".",
                 keep: int = 2):
        if every <= 0:
            raise ValueError(f"checkpoint interval must be positive, "
                             f"got {every}")
        if keep < 1:
            raise ValueError(f"checkpoint keep must be >= 1, got {keep}")
        self.vm = vm
        self.every = int(every)
        self.directory = Path(directory)
        self.keep = int(keep)
        #: Next virtual tick at or past which a bundle is due; lazily
        #: derived from the clock at the first pump so fresh runs and
        #: restored runs (which start mid-clock) mark identically.
        self.next_mark: Optional[int] = None
        self.written = 0
        self._warned = False

    def pump(self, engine) -> None:
        now = engine._now
        if self.next_mark is None:
            self.next_mark = (now // self.every + 1) * self.every
        if now < self.next_mark:
            return
        # Before run() records the request there is no workload to
        # resume; skip the mark rather than write a useless bundle.
        if self.vm._run_request is not None:
            self._write(now, engine._dispatch_seq)
        self.next_mark = (now // self.every + 1) * self.every

    def _write(self, now: int, dispatch_seq: int) -> None:
        target = self.directory / checkpoint_filename(now, dispatch_seq)
        try:
            path = checkpoint_vm(self.vm, target)
        except CheckpointError as e:
            # Periodic checkpointing is best-effort: a failed write must
            # not take down the run it is trying to protect.
            if not self._warned:
                self._warned = True
                print(f"pisces: checkpoint failed, continuing without: {e}",
                      file=sys.stderr)
            return
        self.written += 1
        stats = self.vm.stats
        stats.checkpoints_written += 1
        stats.checkpoint_bytes += path.stat().st_size
        metrics = self.vm.metrics
        if metrics.enabled:
            metrics.counter("checkpoints_written").inc()
        self._prune()

    def _prune(self) -> None:
        bundles = sorted(self.directory.glob("*.pckpt"))
        for old in bundles[:-self.keep]:
            try:
                old.unlink()
            except OSError:
                pass
