"""The ``.pckpt`` on-disk checkpoint bundle.

A checkpoint is *not* a process image -- threads and generator frames
cannot be serialized and do not need to be.  The system is
bit-deterministic given its inputs (program, configuration, seeds,
fault plan) plus the dispatcher's decision stream, so a checkpoint is
exactly those inputs plus the recorded schedule *prefix* and a state
digest to validate against:

* line 1 -- the magic ``#pckpt 1``;
* one ``meta`` line -- compact JSON: the manifest (virtual clock,
  dispatch/schedule position, app request, configuration, resolved
  exec core / window path / dispatcher, fault-plan text and cursor,
  run seed, tracing/detector/profiler switches);
* one ``state`` line -- compact JSON: the run-stable state snapshot
  (per-PE clocks, process scheduling state, in-queues, SHARED COMMON
  and window digests, lock/barrier/force state, RNG digests) used to
  *validate* a restore, never to rebuild state;
* the embedded ``.psched`` schedule prefix, each line prefixed ``| ``;
* a final ``#sum <adler32>`` line over everything above it.

The checksum is what makes a bundle safe to trust after a host crash:
a file torn mid-write fails to parse (:class:`CheckpointFormatError`)
and :func:`find_latest_checkpoint` falls back to the previous bundle.
Writes are atomic (temp file + ``os.replace``) so a crash *during* a
checkpoint never destroys the prior one.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..errors import CheckpointFormatError

MAGIC = "#pckpt 1"

#: Periodic bundles are named so a lexical sort is a (virtual time,
#: dispatch) sort: ``ckpt-<tick:016d>-<dispatch:08d>.pckpt``.
FILENAME_FORMAT = "ckpt-{tick:016d}-{dispatch:08d}.pckpt"


def dumps_bundle(manifest: Dict[str, Any], state: Dict[str, Any],
                 psched_text: str) -> str:
    """Serialize one checkpoint to the ``.pckpt`` text format."""
    lines = [MAGIC]
    lines.append("meta " + json.dumps(manifest, sort_keys=True,
                                      separators=(",", ":")))
    lines.append("state " + json.dumps(state, sort_keys=True,
                                       separators=(",", ":")))
    for ln in psched_text.splitlines():
        lines.append("| " + ln)
    body = "\n".join(lines) + "\n"
    return body + f"#sum {zlib.adler32(body.encode('utf-8'))}\n"


def parse_bundle(text: str) -> Tuple[Dict[str, Any], Dict[str, Any], str]:
    """Parse and checksum-verify a bundle.

    Returns ``(manifest, state, psched_text)``; raises
    :class:`~repro.errors.CheckpointFormatError` on a bad magic,
    truncated body, or checksum mismatch (e.g. a torn file).
    """
    lines = text.splitlines()
    if not lines or lines[0].strip() != MAGIC:
        raise CheckpointFormatError(
            f"not a .pckpt bundle (expected {MAGIC!r} header)")
    if not lines[-1].startswith("#sum "):
        raise CheckpointFormatError(
            "truncated .pckpt bundle: no trailing #sum line")
    try:
        recorded = int(lines[-1].split()[1])
    except (IndexError, ValueError):
        raise CheckpointFormatError(
            f"bad checksum line {lines[-1]!r}") from None
    body = "\n".join(lines[:-1]) + "\n"
    actual = zlib.adler32(body.encode("utf-8"))
    if actual != recorded:
        raise CheckpointFormatError(
            f"checksum mismatch: bundle records {recorded}, body hashes "
            f"to {actual} (torn or tampered file)")
    manifest: Optional[Dict[str, Any]] = None
    state: Optional[Dict[str, Any]] = None
    psched: list = []
    for ln in lines[1:-1]:
        if ln.startswith("meta "):
            manifest = json.loads(ln[len("meta "):])
        elif ln.startswith("state "):
            state = json.loads(ln[len("state "):])
        elif ln.startswith("| "):
            psched.append(ln[2:])
        elif ln.startswith("|"):
            psched.append(ln[1:])
        elif ln.strip():
            raise CheckpointFormatError(
                f"unrecognized bundle line {ln!r}")
    if manifest is None or state is None:
        raise CheckpointFormatError(
            "incomplete .pckpt bundle: missing meta or state line")
    return manifest, state, "\n".join(psched) + ("\n" if psched else "")


def load_bundle(path: Union[str, Path],
                ) -> Tuple[Dict[str, Any], Dict[str, Any], str]:
    """Read and parse one ``.pckpt`` file."""
    return parse_bundle(Path(path).read_text(encoding="utf-8"))


def write_bundle_atomic(path: Union[str, Path], text: str) -> Path:
    """Write a bundle atomically: temp file in the same directory, then
    ``os.replace``.  A host crash mid-write leaves either the old
    bundle or a stray temp file -- never a torn ``.pckpt``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f".{target.name}.tmp{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, target)
    return target


def checkpoint_filename(tick: int, dispatch_seq: int) -> str:
    return FILENAME_FORMAT.format(tick=tick, dispatch=dispatch_seq)


def find_latest_checkpoint(directory: Union[str, Path]) -> Optional[Path]:
    """The newest *valid* bundle in ``directory`` (lexically last
    ``*.pckpt`` that parses and checksums clean), or None.

    Crash recovery calls this after a kill -9: an invalid or torn
    newest bundle is skipped, not trusted, so recovery degrades to the
    previous checkpoint instead of failing.
    """
    candidates = sorted(Path(directory).glob("*.pckpt"), reverse=True)
    for p in candidates:
        try:
            parse_bundle(p.read_text(encoding="utf-8"))
        except (OSError, CheckpointFormatError, json.JSONDecodeError):
            continue
        return p
    return None
