"""Checkpoint capture (:func:`checkpoint_vm`) and crash recovery
(:func:`restore_vm`).

Restore does not deserialize threads or coroutine frames -- it cannot,
and it does not need to.  A restored run is a *reconstruction*: the
manifest rebuilds an identical VM (same configuration, seeds, fault
plan, task registry), the embedded ``.psched`` prefix replays the
original dispatcher's decisions up to the snapshot point, the state
digest is validated at the replay-to-live switch, and then the run
continues under a live dispatcher.  Because traces, profiles and race
reports are *recomputed* during the replay rather than stored, the
final artifacts of ``restore → resume`` are bit-identical to an
uninterrupted run -- that is the recovery guarantee the kill -9 soak
asserts.

Task code is deliberately not serialized (it is code, not state): the
restoring process must hold the same task registry the original run
used.  Registries built at import time (``GLOBAL_REGISTRY``) need
nothing; closure-built registries (e.g. the chaos-jacobi demo's) must
be rebuilt by the caller and passed to :func:`restore_vm`.
"""

from __future__ import annotations

from dataclasses import dataclass as _dataclass, fields as _fields, replace as _replace
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..config.configuration import ClusterSpec, Configuration
from ..correctness.recorder import Schedule, ScheduleRecorder
from ..core.taskid import Designator
from ..core.tracing import TraceEventType
from ..errors import CheckpointError, CheckpointFormatError
from ..results import RunRecord
from .format import dumps_bundle, load_bundle, write_bundle_atomic
from .snapshot import snapshot_state, verify_snapshot

FORMAT_VERSION = 1


class PrefixSchedule:
    """A schedule that is a *prefix*, not a complete run.

    Installed as the restored engine's replay schedule / ``sched_hook``.
    While a stream still has prefix records, hook calls consume-verify
    against the prefix (exactly like a full :class:`Schedule` replay);
    once a stream's prefix is spent, its decisions are *recorded* into
    the live tail instead.  When the dispatch stream runs dry the
    engine switches to a live dispatcher (``Engine._switch_to_live``)
    and fires :attr:`on_prefix_complete` -- restore hangs the snapshot
    validation there.

    ``consumed_streams()`` composes prefix + tail, so a checkpoint
    taken *by a restored run* carries the full decision stream since
    the original run's start -- re-checkpointing survives arbitrarily
    many crash/restore cycles.
    """

    #: Engine contract: do not raise when the dispatch stream runs dry;
    #: switch to the live dispatcher and keep going.
    live_after_prefix = True

    def __init__(self, prefix: Schedule, live_dispatcher: str = ""):
        self.prefix = prefix
        #: Dispatcher the engine continues under after the prefix
        #: ("indexed"/"scan"; "" lets the engine pick its default).
        self.live_dispatcher = live_dispatcher
        #: Live decisions made after each stream's prefix was spent.
        self.tail = ScheduleRecorder()
        #: Called once with the engine at the replay-to-live switch.
        self.on_prefix_complete = None

    def _verifying(self, stream: str) -> bool:
        return self.prefix.remaining(stream) > 0

    # The sched_hook interface: verify against the prefix, then record.

    def on_spawn(self, ordinal: int, name: str) -> None:
        if self._verifying("P"):
            self.prefix.on_spawn(ordinal, name)
        else:
            self.tail.on_spawn(ordinal, name)

    def on_dispatch(self, ordinal: int, start: int, name: str) -> None:
        if self._verifying("D"):
            self.prefix.on_dispatch(ordinal, start, name)
        else:
            self.tail.on_dispatch(ordinal, start, name)

    def on_selfsched(self, member: int, index: int) -> None:
        if self._verifying("S"):
            self.prefix.on_selfsched(member, index)
        else:
            self.tail.on_selfsched(member, index)

    def on_lock_grant(self, member: int, lock: str) -> None:
        if self._verifying("L"):
            self.prefix.on_lock_grant(member, lock)
        else:
            self.tail.on_lock_grant(member, lock)

    def on_accept_match(self, receiver: str, sender: str, mtype: str) -> None:
        if self._verifying("A"):
            self.prefix.on_accept_match(receiver, sender, mtype)
        else:
            self.tail.on_accept_match(receiver, sender, mtype)

    # The replay-dispatcher interface, delegated to the prefix.

    def reset(self) -> None:
        self.prefix.reset()

    def peek_dispatch(self):
        return self.prefix.peek_dispatch()

    def name_of(self, ordinal: int) -> str:
        return self.prefix.name_of(ordinal)

    @property
    def exhausted(self) -> bool:
        return self.prefix.exhausted

    def progress(self) -> str:
        return self.prefix.progress()

    # The uniform prefix interface (checkpoints taken mid- or post-replay).

    def position(self) -> Dict[str, int]:
        pre, tail = self.prefix.position(), self.tail.position()
        return {k: pre[k] + tail[k] for k in pre}

    def consumed_streams(self) -> Dict[str, list]:
        pre, tail = self.prefix.consumed_streams(), self.tail.consumed_streams()
        return {k: pre[k] + tail[k] for k in pre}


# ------------------------------------------------------- serialization --


def config_to_dict(config: Configuration) -> Dict[str, Any]:
    """Configuration as JSON-stable data.  ``default_accept_delay`` is
    serialized *resolved*, so a restore is immune to a different
    ``PISCES_ACCEPT_TIMEOUT`` in the recovering environment."""
    d: Dict[str, Any] = {}
    for f in _fields(Configuration):
        v = getattr(config, f.name)
        if f.name == "clusters":
            v = [{"number": c.number, "primary_pe": c.primary_pe,
                  "slots": c.slots,
                  "secondary_pes": list(c.secondary_pes)} for c in v]
        elif isinstance(v, tuple):
            v = list(v)
        d[f.name] = v
    return d


def config_from_dict(d: Dict[str, Any]) -> Configuration:
    kwargs = dict(d)
    kwargs["clusters"] = tuple(
        ClusterSpec(number=c["number"], primary_pe=c["primary_pe"],
                    slots=c["slots"],
                    secondary_pes=tuple(c["secondary_pes"]))
        for c in d["clusters"])
    kwargs["trace_events"] = tuple(d.get("trace_events", ()))
    known = {f.name for f in _fields(Configuration)}
    return Configuration(**{k: v for k, v in kwargs.items() if k in known})


def _placement_to_json(placement: Any) -> Any:
    if isinstance(placement, Designator):
        return {"sentinel": placement.value}
    return placement


def _placement_from_json(placement: Any) -> Any:
    if isinstance(placement, dict) and "sentinel" in placement:
        return Designator(placement["sentinel"])
    return placement


def _psched_text(streams: Dict[str, list]) -> str:
    rec = ScheduleRecorder()
    rec.spawns = list(streams["P"])
    rec.dispatches = list(streams["D"])
    rec.selfsched = list(streams["S"])
    rec.lock_grants = list(streams["L"])
    rec.accepts = list(streams["A"])
    return rec.dumps()


def build_manifest(vm) -> Dict[str, Any]:
    """Everything needed to rebuild this VM in a fresh process."""
    from .. import __version__
    eng = vm.engine
    name, run_args, placement = vm._run_request
    manifest: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "repro_version": __version__,
        "now": int(eng.now()),
        "dispatch_seq": int(eng._dispatch_seq),
        "app": {"tasktype": name, "args": list(run_args),
                "placement": _placement_to_json(placement)},
        # The config is serialized with its core/path choices already
        # resolved, so a bundle written by a restored run (whose config
        # was forced to the resolved values) is byte-identical to the
        # original run's bundle at the same mark.
        "config": config_to_dict(_replace(vm.config,
                                          exec_core=vm.exec_core,
                                          window_path=vm.window_path)),
        "exec_core": vm.exec_core,
        "window_path": vm.window_path,
        "dispatcher": eng._live_dispatcher,
        "run_seed": vm.config.run_seed,
        "schedule_position": eng.sched_hook.position(),
        "trace_events": sorted(t.value for t in vm.tracer.enabled_types),
        "strict_overflow": bool(vm.tracer.strict_overflow),
        "detect_races": (None if vm.race_detector is None
                         else vm.race_detector.mode),
        "profile": vm.profiler is not None,
        "fault_plan": None,
        "fault_cursor": None,
    }
    if vm.faults is not None:
        from ..faults.plan import dumps as _plan_dumps
        manifest["fault_plan"] = _plan_dumps(vm.faults.plan)
        manifest["fault_cursor"] = vm.faults.cursor_state()
    return manifest


# ------------------------------------------------------------- capture --


def checkpoint_vm(vm, path: Union[str, Path]) -> Path:
    """Snapshot a live VM to one ``.pckpt`` bundle at ``path``.

    Must be called *between dispatches* (the periodic checkpointer's
    engine hook does; task code cannot checkpoint the VM it runs in)
    and only after :meth:`PiscesVM.run` has started the top-level task.
    Raises :class:`~repro.errors.CheckpointError` otherwise, or when no
    schedule decision stream is being recorded.
    """
    eng = vm.engine
    if vm._run_request is None:
        raise CheckpointError(
            "nothing to checkpoint: vm.run() has not started a "
            "top-level task")
    if eng.in_process():
        raise CheckpointError(
            "checkpoint_vm must be called between dispatches (e.g. from "
            "the periodic checkpointer), not from inside task code")
    if eng.sched_hook is None:
        raise CheckpointError(
            "checkpointing needs the schedule decision stream: run with "
            "a ScheduleRecorder (checkpoint_every and record_run install "
            "one automatically)")
    manifest = build_manifest(vm)
    state = snapshot_state(vm)
    try:
        text = dumps_bundle(
            manifest, state, _psched_text(eng.sched_hook.consumed_streams()))
    except TypeError as e:
        raise CheckpointError(
            f"run request is not JSON-serializable: {e}") from None
    return write_bundle_atomic(path, text)


# ------------------------------------------------------------- restore --


@_dataclass
class RestoredRun(RunRecord):
    """A VM rebuilt from a checkpoint, booted, ready to resume.

    :meth:`resume` re-issues the original top-level run request; the
    engine replays the embedded schedule prefix (recomputing traces,
    metrics, race reports and profiles on the way), validates the state
    digest at the switch point, then continues live to completion.
    """

    vm: Any
    manifest: Dict[str, Any]
    state: Dict[str, Any]
    path: Path

    @property
    def elapsed(self) -> int:
        """Virtual ticks at the snapshot point (the :class:`RunResult`
        from :meth:`resume` carries the full run's elapsed)."""
        return int(self.manifest["now"])

    def resume(self, shutdown: bool = True):
        """Run to completion; returns the :class:`RunResult` an
        uninterrupted run would have produced."""
        app = self.manifest["app"]
        return self.vm.run(app["tasktype"], *app["args"],
                           on=_placement_from_json(app["placement"]),
                           shutdown=shutdown)


def restore_vm(path: Union[str, Path], registry=None) -> RestoredRun:
    """Rebuild a VM from a ``.pckpt`` bundle.

    ``registry`` must hold the same task code the original run used;
    None means the import-time ``GLOBAL_REGISTRY``.  Host-kill fault
    events are disarmed in the restored VM (re-firing the kill that
    crashed the original run would make recovery a crash loop); every
    other fault replays exactly.
    """
    from ..core.vm import PiscesVM
    manifest, state, psched_text = load_bundle(path)
    if manifest.get("format") != FORMAT_VERSION:
        raise CheckpointFormatError(
            f"unsupported checkpoint format {manifest.get('format')!r} "
            f"(this build reads format {FORMAT_VERSION})")
    config = config_from_dict(manifest["config"])
    # The resolved core/path/dispatcher choices are part of the
    # checkpoint identity: force them so the recovering environment's
    # PISCES_* variables cannot change the replay.
    config = _replace(config, exec_core=manifest["exec_core"],
                      window_path=manifest["window_path"])
    sched = PrefixSchedule(Schedule.parse(psched_text),
                           live_dispatcher=manifest.get("dispatcher", ""))
    plan = None
    if manifest.get("fault_plan"):
        from ..faults.plan import loads as _plan_loads
        plan = _plan_loads(manifest["fault_plan"])
    vm = PiscesVM(config, registry=registry, fault_plan=plan,
                  replay=sched, detect_races=manifest.get("detect_races"),
                  autoboot=False)
    if vm.faults is not None:
        vm.faults.arm_host_kills = False
    names = manifest.get("trace_events") or ()
    if names:
        vm.tracer.enable(*[TraceEventType(n) for n in names])
    vm.tracer.strict_overflow = bool(manifest.get("strict_overflow"))
    if manifest.get("profile") and vm.profiler is None:
        vm.enable_profiling()

    def _validate(engine, _vm=vm, _state=state):
        verify_snapshot(_vm, _state)

    sched.on_prefix_complete = _validate
    vm.boot()
    return RestoredRun(vm=vm, manifest=manifest, state=state,
                       path=Path(path))
