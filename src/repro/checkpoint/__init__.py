"""Checkpoint / restore / crash recovery (the ``.pckpt`` bundle).

Snapshot a live VM between dispatches, restore it in a fresh process,
and resume to a final trace, profile and race report bit-identical to
an uninterrupted run -- including after a ``kill -9``.  See
``docs/architecture.md`` ("Checkpoint / restore") for the design and
``docs/users_manual.md`` section 14 for usage.
"""

from .format import find_latest_checkpoint, load_bundle
from .policy import PeriodicCheckpointer
from .restore import PrefixSchedule, RestoredRun, checkpoint_vm, restore_vm
from .snapshot import snapshot_state, verify_snapshot

__all__ = [
    "PeriodicCheckpointer",
    "PrefixSchedule",
    "RestoredRun",
    "checkpoint_vm",
    "find_latest_checkpoint",
    "load_bundle",
    "restore_vm",
    "snapshot_state",
    "verify_snapshot",
]
