"""Run-stable state snapshot and restore validation.

The snapshot is a *digest* of everything the VM's schedule position
pins down: per-PE clocks, kernel-process scheduling state, task
liveness and restart budgets, in-queue contents, SHARED COMMON and
window-array checksums, lock / barrier / force counters, and the RNG
states.  A restored run replays the recorded schedule prefix and must
land on exactly this snapshot before it is allowed to continue live --
any divergence means the rebuilt VM is not the VM that was
checkpointed (wrong registry, changed task code, edited bundle) and
continuing would silently produce garbage.

Two stability rules govern what may appear here:

* Never raw ``pid`` or ``Message.seq`` -- both come from process-global
  counters that differ between the original process and a restored one
  (e.g. the restorer constructs objects the original never did).  Use
  ``spawn_ordinal``, names, taskid strings, and message *field*
  tuples instead.
* JSON-stable types only: string keys, lists not tuples.  Comparison
  round-trips both sides through JSON so an in-memory snapshot and one
  parsed back from a bundle digest identically.
"""

from __future__ import annotations

import dataclasses
import json
import numbers as _numbers
import zlib
from typing import Any, Dict, List, Optional

from ..errors import CheckpointError


def _inq_digest(q) -> List[list]:
    """In-queue contents as run-stable field tuples, in queue order.

    ``Message.seq`` is deliberately excluded (process-global counter);
    queue *order* already encodes the (arrival_time, seq) sort.
    """
    return [[m.mtype, str(m.sender), str(m.receiver),
             int(m.send_time), int(m.arrival_time), int(m.nbytes)]
            for m in q._q]


def _rng_digest(rng) -> int:
    return zlib.adler32(repr(rng.getstate()).encode("utf-8"))


def snapshot_state(vm) -> Dict[str, Any]:
    """Capture the run-stable state digest of a VM between dispatches."""
    eng = vm.engine
    ordinal_of = {p.pid: p.spawn_ordinal for p in eng._by_ordinal}

    tasks = []
    for tid in sorted(vm.tasks, key=str):
        t = vm.tasks[tid]
        tasks.append({
            "tid": str(tid),
            "ttype": t.ttype.name,
            "alive": bool(t.alive),
            "restarts_used": int(t.restarts_used),
            "inq": _inq_digest(t.inq),
            "shared": t.shared_state.snapshot(ordinal_of.get),
            "arrays": t.arrays.snapshot(),
            "force": None if t.force is None else t.force.snapshot(),
        })

    controllers = {str(tid): _inq_digest(c.inq)
                   for tid, c in sorted(vm.controllers.items(), key=lambda kv: str(kv[0]))}

    state: Dict[str, Any] = {
        "now": int(eng.now()),
        "dispatch_seq": int(eng._dispatch_seq),
        "clocks": {str(pe): int(clk.ticks)
                   for pe, clk in sorted(eng._clockmap.items())},
        "procs": [p.sched_snapshot() for p in eng._by_ordinal],
        "tasks": tasks,
        "controllers": controllers,
        "rng": {"run": _rng_digest(vm.run_rng)},
        # Host-side checkpoint accounting is excluded: the original run
        # and a restored continuation legitimately differ in how many
        # bundles each process wrote.  Counters fed by numpy (e.g. the
        # window byte totals) arrive as numpy scalars; coerce so the
        # digest is JSON-stable.
        "stats": {k: (int(v) if isinstance(v, _numbers.Integral)
                      and not isinstance(v, bool) else v)
                  for k, v in dataclasses.asdict(vm.stats).items()
                  if k not in ("checkpoints_written", "checkpoint_bytes")},
    }
    if vm.file_controller is not None:
        state["file_store"] = vm.file_controller.arrays.snapshot()
    if vm.faults is not None:
        state["rng"]["faults"] = _rng_digest(vm.faults.rng)
        state["fault_cursor"] = vm.faults.cursor_state()
    return state


def _normalize(x: Any) -> Any:
    """JSON round-trip so in-memory and bundle-parsed snapshots compare
    equal (int dict keys become strings, tuples become lists)."""
    return json.loads(json.dumps(x, sort_keys=True))


def verify_snapshot(vm, expected: Dict[str, Any]) -> None:
    """Compare the VM's current state digest against a checkpoint's.

    Raises :class:`~repro.errors.CheckpointError` naming the mismatched
    top-level keys; used at the replay-to-live switch to prove the
    restored VM reconverged on the checkpointed state.
    """
    actual = _normalize(snapshot_state(vm))
    expected = _normalize(expected)
    if actual == expected:
        return
    keys = sorted(set(actual) | set(expected))
    bad = [k for k in keys if actual.get(k) != expected.get(k)]
    raise CheckpointError(
        "restored run diverged from checkpoint at the replay/live switch; "
        f"mismatched snapshot sections: {', '.join(bad) or '<structure>'} "
        "(wrong task registry, changed task code, or edited bundle?)")
