"""Per-PE virtual clocks.

The paper's trace lines carry a "Clock reading (PE number and 'ticks'
count)" -- each PE has its own tick counter.  The MMOS engine advances a
PE's clock as processes execute slices on it; the *elapsed* time of a run
is the maximum over all PE clocks, which is what makes parallel speedup
measurable in the simulation.
"""

from __future__ import annotations

from typing import Dict, Iterable


class PEClock:
    """Tick counter for one processing element."""

    __slots__ = ("pe", "ticks", "busy_ticks")

    def __init__(self, pe: int):
        self.pe = pe
        self.ticks = 0       # current local time
        self.busy_ticks = 0  # total ticks spent executing process slices

    def advance_to(self, t: int) -> None:
        """Move the clock forward to absolute time ``t`` (idle gap)."""
        if t > self.ticks:
            self.ticks = t

    def run(self, start: int, cost: int) -> int:
        """Record a busy slice of ``cost`` ticks beginning at ``start``.

        Returns the completion time.  ``start`` may be later than the
        current reading (the PE was idle waiting for work).
        """
        if cost < 0:
            raise ValueError("slice cost must be non-negative")
        self.advance_to(start)
        self.ticks += cost
        self.busy_ticks += cost
        return self.ticks

    def utilization(self, horizon: int) -> float:
        """Busy fraction of this PE over ``[0, horizon]``."""
        return self.busy_ticks / horizon if horizon > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PEClock(pe={self.pe}, ticks={self.ticks}, busy={self.busy_ticks})"


class ClockBank:
    """The collection of all PE clocks in a machine."""

    def __init__(self, pes: Iterable[int]):
        self._clocks: Dict[int, PEClock] = {pe: PEClock(pe) for pe in pes}

    def __getitem__(self, pe: int) -> PEClock:
        return self._clocks[pe]

    def __contains__(self, pe: int) -> bool:
        return pe in self._clocks

    def pes(self) -> Iterable[int]:
        return self._clocks.keys()

    def elapsed(self) -> int:
        """Global elapsed virtual time = max over PE clock readings."""
        return max((c.ticks for c in self._clocks.values()), default=0)

    def utilizations(self) -> Dict[int, float]:
        horizon = self.elapsed()
        return {pe: c.utilization(horizon) for pe, c in self._clocks.items()}

    def snapshot(self) -> Dict[int, int]:
        return {pe: c.ticks for pe, c in self._clocks.items()}
