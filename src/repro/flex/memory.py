"""Simulated FLEX/32 memories with byte-level accounting.

Two memory kinds appear in the paper (section 11):

* each PE has 1 Mbyte of *local memory*;
* a 2.25 Mbyte *shared memory* is accessible by all PEs, and the PISCES
  run-time system carves three areas out of it: the system tables, the
  message heap (explicit allocate/deallocate as messages are sent and
  accepted), and the statically-allocated SHARED COMMON blocks.

The shared memory is modelled by :class:`HeapAllocator`, a first-fit
free-list allocator with block headers and coalescing, because the paper
explicitly calls the message area "a heap with explicit
allocation/deallocation".  No payload bytes are stored -- the allocator
tracks *extents* only -- but the accounting (live bytes, high-water mark,
fragmentation) is real and drives the section-13 storage benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import BadFree, OutOfMemory

#: Per-allocation bookkeeping overhead, in bytes.  Real allocators keep a
#: header word or two in front of each block; 8 bytes is typical for a
#: 32-bit machine of the FLEX/32 era (size word + status/link word).
BLOCK_HEADER_BYTES = 8


@dataclass(frozen=True)
class Allocation:
    """A live allocation: address of the *payload* and its size."""

    addr: int
    size: int
    tag: str = ""

    @property
    def end(self) -> int:
        return self.addr + self.size


@dataclass
class HeapStats:
    """Cumulative and instantaneous heap statistics."""

    capacity: int
    live_bytes: int = 0          # payload bytes currently allocated
    live_overhead: int = 0       # header bytes currently allocated
    high_water: int = 0          # max of live_bytes + live_overhead ever
    total_allocs: int = 0
    total_frees: int = 0
    failed_allocs: int = 0

    @property
    def live_total(self) -> int:
        """Payload + header bytes currently in use."""
        return self.live_bytes + self.live_overhead

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.live_total

    @property
    def utilization(self) -> float:
        """Fraction of capacity currently in use (payload + headers)."""
        return self.live_total / self.capacity if self.capacity else 0.0


class HeapAllocator:
    """First-fit free-list allocator over a fixed-size extent.

    Invariants (exercised by the property-based tests):

    * live blocks never overlap and never extend past ``capacity``;
    * freeing returns exactly the bytes (payload + header) allocated;
    * adjacent free regions are coalesced, so a heap with no live
      allocations is always one free region of ``capacity`` bytes.
    """

    def __init__(self, capacity: int, name: str = "shared"):
        if capacity <= 0:
            raise ValueError("heap capacity must be positive")
        self.name = name
        self.capacity = capacity
        # Free list: sorted list of (addr, size) regions, coalesced.
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        # addr -> Allocation (addr is the payload address).
        self._live: Dict[int, Allocation] = {}
        self.stats = HeapStats(capacity=capacity)

    # ------------------------------------------------------------ alloc --

    def alloc(self, size: int, tag: str = "") -> Allocation:
        """Allocate ``size`` payload bytes; returns the :class:`Allocation`.

        Raises :class:`~repro.errors.OutOfMemory` when no free region can
        hold ``size + BLOCK_HEADER_BYTES`` bytes.
        """
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        need = size + BLOCK_HEADER_BYTES
        for i, (addr, fsize) in enumerate(self._free):
            if fsize >= need:
                payload = addr + BLOCK_HEADER_BYTES
                rest = fsize - need
                if rest:
                    self._free[i] = (addr + need, rest)
                else:
                    del self._free[i]
                a = Allocation(addr=payload, size=size, tag=tag)
                self._live[payload] = a
                st = self.stats
                st.live_bytes += size
                st.live_overhead += BLOCK_HEADER_BYTES
                st.total_allocs += 1
                st.high_water = max(st.high_water, st.live_total)
                return a
        self.stats.failed_allocs += 1
        largest = max((s for _, s in self._free), default=0)
        raise OutOfMemory(size, max(0, largest - BLOCK_HEADER_BYTES), self.name)

    # ------------------------------------------------------------- free --

    def free(self, alloc_or_addr) -> None:
        """Release an allocation (by :class:`Allocation` or payload addr)."""
        addr = alloc_or_addr.addr if isinstance(alloc_or_addr, Allocation) else int(alloc_or_addr)
        a = self._live.pop(addr, None)
        if a is None:
            raise BadFree(f"{self.name}: free of non-live address {addr}")
        start = a.addr - BLOCK_HEADER_BYTES
        size = a.size + BLOCK_HEADER_BYTES
        self._insert_free(start, size)
        self.stats.live_bytes -= a.size
        self.stats.live_overhead -= BLOCK_HEADER_BYTES
        self.stats.total_frees += 1

    def _insert_free(self, start: int, size: int) -> None:
        """Insert a region into the sorted free list, coalescing neighbours."""
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid][0] < start:
                lo = mid + 1
            else:
                hi = mid
        free.insert(lo, (start, size))
        # Coalesce with successor, then predecessor.
        if lo + 1 < len(free) and free[lo][0] + free[lo][1] == free[lo + 1][0]:
            free[lo] = (free[lo][0], free[lo][1] + free[lo + 1][1])
            del free[lo + 1]
        if lo > 0 and free[lo - 1][0] + free[lo - 1][1] == free[lo][0]:
            free[lo - 1] = (free[lo - 1][0], free[lo - 1][1] + free[lo][1])
            del free[lo]

    # ---------------------------------------------------------- queries --

    def live_allocations(self) -> Iterator[Allocation]:
        return iter(sorted(self._live.values(), key=lambda a: a.addr))

    def live_count(self) -> int:
        return len(self._live)

    def live_bytes_by_tag(self) -> Dict[str, int]:
        """Payload bytes live per allocation tag (for storage accounting)."""
        out: Dict[str, int] = {}
        for a in self._live.values():
            out[a.tag] = out.get(a.tag, 0) + a.size
        return out

    def free_regions(self) -> List[Tuple[int, int]]:
        return list(self._free)

    def largest_free(self) -> int:
        return max((s for _, s in self._free), default=0)

    def fragmentation(self) -> float:
        """1 - largest_free/free_bytes; 0 when free space is one region."""
        free = self.stats.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free() / free

    def check_invariants(self) -> None:
        """Assert structural invariants; used by tests."""
        regions: List[Tuple[int, int, str]] = []
        for a in self._live.values():
            regions.append((a.addr - BLOCK_HEADER_BYTES,
                            a.size + BLOCK_HEADER_BYTES, "live"))
        for addr, size in self._free:
            regions.append((addr, size, "free"))
        regions.sort()
        pos = 0
        prev_kind: Optional[str] = None
        for addr, size, kind in regions:
            if addr != pos:
                raise AssertionError(f"gap or overlap at {pos}..{addr}")
            if kind == "free" and prev_kind == "free":
                raise AssertionError(f"uncoalesced free regions at {addr}")
            pos = addr + size
            prev_kind = kind
        if pos != self.capacity:
            raise AssertionError(f"regions cover {pos} of {self.capacity}")


class LocalMemory:
    """A PE's private memory: a simple bump accounting of *resident* bytes.

    MMOS loads the kernel plus the complete user/system code image into
    every selected PE (section 11: "all selected PE's are loaded with the
    same code").  Local memory is not a heap in the paper's measurements;
    what matters is how many bytes are resident, broken out by category
    (kernel, pisces system code, pisces system data, user code, user data).
    """

    def __init__(self, capacity: int, pe: int):
        self.capacity = capacity
        self.pe = pe
        self._resident: Dict[str, int] = {}

    def load(self, category: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot load a negative number of bytes")
        new_total = self.resident_bytes() + nbytes
        if new_total > self.capacity:
            raise OutOfMemory(nbytes, self.capacity - self.resident_bytes(),
                              f"local(PE {self.pe})")
        self._resident[category] = self._resident.get(category, 0) + nbytes

    def unload(self, category: str) -> int:
        """Remove a category entirely; returns the bytes released."""
        return self._resident.pop(category, 0)

    def resident_bytes(self, category: Optional[str] = None) -> int:
        if category is not None:
            return self._resident.get(category, 0)
        return sum(self._resident.values())

    def categories(self) -> Dict[str, int]:
        return dict(self._resident)

    def fraction_used(self, categories: Optional[List[str]] = None) -> float:
        """Fraction of capacity used by the given categories (all if None)."""
        if categories is None:
            used = self.resident_bytes()
        else:
            used = sum(self._resident.get(c, 0) for c in categories)
        return used / self.capacity
