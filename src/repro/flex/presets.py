"""Canonical machine instances.

``nasa_langley_flex32()`` is the machine the paper measured: 20 PEs,
1 MB local each, 2.25 MB shared, PEs 1-2 reserved for Unix and holding
the disks (so the FLEX at NASA has *no local disks* on MMOS PEs, which
is why the file controller of section 5 was hypothetical there).
"""

from __future__ import annotations

from .machine import FlexMachine, MachineSpec, MBYTE


def nasa_langley_flex32() -> FlexMachine:
    """The NASA Langley FLEX/32 exactly as described in section 11."""
    return FlexMachine(MachineSpec(
        n_pes=20,
        local_memory_bytes=MBYTE,
        shared_memory_bytes=int(2.25 * MBYTE),
        unix_pes=(1, 2),
        disk_pes=(1, 2),
        name="FLEX/32 (NASA Langley)",
    ))


def small_flex(n_pes: int = 6, shared_kb: int = 256) -> FlexMachine:
    """A scaled-down sibling for fast unit tests.

    Keeps the structural rules (PEs 1-2 run Unix) but shrinks memories so
    exhaustion paths are cheap to exercise.
    """
    if n_pes < 3:
        raise ValueError("small_flex needs at least 3 PEs (1-2 run Unix)")
    return FlexMachine(MachineSpec(
        n_pes=n_pes,
        local_memory_bytes=256 * 1024,
        shared_memory_bytes=shared_kb * 1024,
        unix_pes=(1, 2),
        disk_pes=(1, 2),
        name=f"FLEX/{n_pes} (test)",
    ))
