"""FLEX/32 machine model: PEs, memories, shared-memory heap, clocks."""

from .clock import ClockBank, PEClock
from .machine import FlexMachine, MachineSpec, ProcessingElement, MBYTE
from .memory import (
    Allocation,
    BLOCK_HEADER_BYTES,
    HeapAllocator,
    HeapStats,
    LocalMemory,
)
from .presets import nasa_langley_flex32, small_flex

__all__ = [
    "Allocation",
    "BLOCK_HEADER_BYTES",
    "ClockBank",
    "FlexMachine",
    "HeapAllocator",
    "HeapStats",
    "LocalMemory",
    "MBYTE",
    "MachineSpec",
    "PEClock",
    "ProcessingElement",
    "nasa_langley_flex32",
    "small_flex",
]
