"""The FLEX/32 machine model.

Section 11 of the paper gives the hardware inventory of the NASA Langley
FLEX/32 and how its software organizes it:

* 20 processors (National Semiconductor 32032), numbered 1..20;
* 1 Mbyte of local memory per processor;
* 2.25 Mbyte of shared memory accessible by all processors;
* disks attached to processors 1 and 2;
* PEs 1 and 2 run Unix only (and the file system); PEs 3..20 run MMOS
  and are the ones available to PISCES user programs;
* the shared memory is not (easily) accessible from the Unix PEs.

:class:`FlexMachine` models exactly that, parameterized so smaller or
larger sibling machines can be instantiated for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import BadPE
from .clock import ClockBank
from .memory import HeapAllocator, LocalMemory

MBYTE = 1024 * 1024


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a FLEX-class machine."""

    n_pes: int = 20
    local_memory_bytes: int = MBYTE
    shared_memory_bytes: int = int(2.25 * MBYTE)
    #: PE numbers reserved for Unix (not available to PISCES user tasks).
    unix_pes: Tuple[int, ...] = (1, 2)
    #: PEs with directly attached disks.
    disk_pes: Tuple[int, ...] = (1, 2)
    name: str = "FLEX/32"

    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise ValueError("machine needs at least one PE")
        for pe in self.unix_pes:
            if not 1 <= pe <= self.n_pes:
                raise ValueError(f"unix PE {pe} outside 1..{self.n_pes}")
        for pe in self.disk_pes:
            if not 1 <= pe <= self.n_pes:
                raise ValueError(f"disk PE {pe} outside 1..{self.n_pes}")

    @property
    def mmos_pes(self) -> Tuple[int, ...]:
        """PEs that run MMOS and may host PISCES tasks."""
        return tuple(pe for pe in range(1, self.n_pes + 1)
                     if pe not in self.unix_pes)


@dataclass
class ProcessingElement:
    """One PE: a number, its local memory, and a running flag."""

    number: int
    local: LocalMemory
    runs_unix: bool = False
    has_disk: bool = False
    booted: bool = False
    #: Set when the PE has crashed/hung (fault injection); a failed PE
    #: never hosts another process until the machine is rebuilt.
    failed: bool = False

    def boot(self) -> None:
        self.booted = True

    def reboot(self) -> None:
        """PEs are rebooted after each user program completes (section 11)."""
        # A reboot drops everything that was loaded except the category
        # re-loaded by the next loadfile; model it as a full unload.
        for cat in list(self.local.categories()):
            self.local.unload(cat)
        self.booted = False


class FlexMachine:
    """A FLEX/32 instance: PEs, local memories, shared memory, clocks."""

    def __init__(self, spec: Optional[MachineSpec] = None):
        self.spec = spec or MachineSpec()
        self.pes: Dict[int, ProcessingElement] = {}
        for n in range(1, self.spec.n_pes + 1):
            self.pes[n] = ProcessingElement(
                number=n,
                local=LocalMemory(self.spec.local_memory_bytes, pe=n),
                runs_unix=n in self.spec.unix_pes,
                has_disk=n in self.spec.disk_pes,
            )
        self.shared = HeapAllocator(self.spec.shared_memory_bytes, name="shared")
        self.clocks = ClockBank(range(1, self.spec.n_pes + 1))

    # ------------------------------------------------------------ access --

    def pe(self, number: int) -> ProcessingElement:
        try:
            return self.pes[number]
        except KeyError:
            raise BadPE(f"no PE {number} on {self.spec.name} "
                        f"(valid: 1..{self.spec.n_pes})") from None

    def mmos_pes(self) -> List[int]:
        return list(self.spec.mmos_pes)

    def validate_user_pe(self, number: int) -> int:
        """Check that a PE may host PISCES user tasks; return it."""
        pe = self.pe(number)
        if pe.runs_unix:
            raise BadPE(f"PE {number} runs Unix only and is not available "
                        f"to PISCES user tasks")
        return number

    # ----------------------------------------------------------- failure --

    def fail_pe(self, number: int) -> ProcessingElement:
        """Mark a PE crashed/hung (fault injection).  Idempotent."""
        pe = self.pe(number)
        pe.failed = True
        return pe

    def failed_pes(self) -> List[int]:
        """PE numbers currently marked failed, in order."""
        return sorted(n for n, pe in self.pes.items() if pe.failed)

    # ------------------------------------------------------------ timing --

    def elapsed(self) -> int:
        """Elapsed virtual time of the run, in ticks."""
        return self.clocks.elapsed()

    # --------------------------------------------------------- reporting --

    def memory_report(self) -> str:
        """Human-readable memory usage summary (used by DUMP SYSTEM STATE)."""
        lines = [f"{self.spec.name} memory report"]
        st = self.shared.stats
        lines.append(
            f"  shared: {st.live_total}/{st.capacity} bytes live "
            f"({100 * st.utilization:.3f}%), high-water {st.high_water}, "
            f"{self.shared.live_count()} live blocks"
        )
        for tag, nbytes in sorted(self.shared.live_bytes_by_tag().items()):
            lines.append(f"    [{tag or '-'}] {nbytes} bytes")
        for n, pe in sorted(self.pes.items()):
            total = pe.local.resident_bytes()
            if total or pe.booted:
                cats = ", ".join(f"{c}={b}" for c, b in sorted(pe.local.categories().items()))
                lines.append(f"  PE {n:2d} local: {total} bytes ({cats})")
        return "\n".join(lines)
