"""``python -m repro`` -- the interactive PISCES environment.

Section 11: "When the user has created and successfully compiled his
Pisces Fortran tasktype definitions ..., then the command 'pisces'
brings up the PISCES configuration environment. ... If the user
requests program execution from the configuration environment, the
loadfile is downloaded ... and control transfers to the PISCES
execution environment."

This entry point reproduces that flow on a terminal:

    python -m repro [program.pf ...]

1. each Pisces Fortran source given on the command line is run through
   the preprocessor and its tasktypes registered;
2. the configuration menu builds (or loads) a configuration;
3. the VM boots and control transfers to the execution-environment CLI
   (option 1 initiates tasks, 0 terminates the run).

Everything is driven through stdin/stdout, so the whole session is
scriptable:  ``python -m repro prog.pf < session.txt``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Iterator, List, Optional

from .config.menus import ConfigurationMenu
from .core.task import TaskRegistry
from .core.vm import PiscesVM
from .errors import PiscesError
from .exec_env.cli import ExecutionCLI
from .flex.presets import nasa_langley_flex32
from .fortran import preprocess


def _stdin_lines() -> Iterator[str]:
    for line in sys.stdin:
        yield line.rstrip("\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    registry = TaskRegistry()
    for path in args:
        try:
            program = preprocess(Path(path).read_text())
        except (OSError, PiscesError) as e:
            print(f"error preprocessing {path}: {e}", file=sys.stderr)
            return 1
        for name in program.registry.names():
            registry.define(program.registry.get(name))
        print(f"loaded {path}: tasktypes {program.task_names()}")
    if not registry.names():
        print("note: no Pisces Fortran sources given; only monitor "
              "operations on an empty registry will work")

    machine = nasa_langley_flex32()
    lines = _stdin_lines()
    print("PISCES 2 (reproduction) -- configuration environment")
    menu = ConfigurationMenu(machine=machine.spec, inputs=lines,
                             output=print)
    try:
        config = menu.run()
    except PiscesError as e:
        print(f"configuration failed: {e}", file=sys.stderr)
        return 1

    print()
    print("downloading loadfile and starting controllers ...")
    vm = PiscesVM(config, registry=registry, machine=machine)
    print("control transfers to the PISCES execution environment")
    try:
        cli = ExecutionCLI(vm, inputs=lines, output=print)
        cli.run()
    finally:
        vm.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
