#!/usr/bin/env python3
"""The run service end to end: boot, submit, poll, fetch artifacts.

This script boots the multi-tenant run service as a real
``python -m repro.service`` subprocess (its own store, an ephemeral
port), then drives it through :class:`repro.service.client.ServiceClient`
the way an external tool would:

1. two tenants submit a mixed bag of runs -- a windows Jacobi solve,
   a matrix multiply on the coop core, and a *fault-injected*
   chaos Jacobi whose plan kills a worker task mid-solve;
2. a third submission over tenant bob's quota is refused with the
   HTTP 429 -> :class:`~repro.errors.QuotaExceeded` mapping;
3. the runs are polled to completion; per-tenant usage and the run
   records (state machine, exit info, provenance axes) are printed;
4. the archived artifacts come back over HTTP: the trace-event JSONL,
   the metrics snapshot, and the fault-event log of the chaos run;
5. the payoff: the service run's virtual time equals the same spec
   executed standalone in this process -- multi-tenancy added nothing.

Run:  python examples/run_service.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.errors import QuotaExceeded
from repro.faults import FaultPlan, TaskKill, dumps as dump_plan
from repro.service.client import ServiceClient
from repro.service.executor import standalone_run
from repro.service.spec import RunSpec

CHAOS_PLAN = dump_plan(FaultPlan(
    seed=7, kills=(TaskKill(at=5_000, tasktype="CWORKER"),)))

JACOBI = {"app": "jacobi", "params": {"n": 16, "sweeps": 3}}
MATMUL = {"app": "matmul", "params": {"n": 10, "n_workers": 2},
          "exec_core": "coop"}
CHAOS = {"app": "chaos_jacobi",
         "params": {"n": 12, "sweeps": 2, "on_death": "reassign"},
         "fault_plan": CHAOS_PLAN}


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="pisces-svc-"))
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--root", str(root),
         "--workers", "2", "--quota", "bob=1,1,8"],
        stdout=subprocess.PIPE, env=env)
    try:
        boot = json.loads(proc.stdout.readline())
        print(f"service up at {boot['url']}  (store: {boot['root']})")

        alice = ServiceClient(boot["url"], tenant="alice")
        bob = ServiceClient(boot["url"], tenant="bob")

        # --- submit -------------------------------------------------
        runs = [alice.submit(JACOBI), alice.submit(CHAOS),
                bob.submit(MATMUL)]
        for r in runs:
            print(f"  submitted {r['run_id']} [{r['tenant']}] "
                  f"{r['spec']['app']}")

        # --- bob is over quota (max_queued=1) -----------------------
        try:
            bob.submit(MATMUL)
        except QuotaExceeded as e:
            print(f"  429 as expected: {e}")

        # --- poll to completion -------------------------------------
        finals = [alice.wait(r["run_id"], timeout=300) for r in runs]
        for rec in finals:
            print(f"  {rec['run_id']} -> {rec['state']}  "
                  f"elapsed={rec['exit']['elapsed_ticks']} ticks  "
                  f"core={rec['provenance']['exec_core']}"
                  f"/{rec['provenance']['task_bodies']}")
            assert rec["state"] == "DONE"

        print("  usage[alice]:", alice.usage())

        # --- fetch artifacts over HTTP ------------------------------
        chaos_id = runs[1]["run_id"]
        names = alice.artifacts(chaos_id)
        print(f"  artifacts of {chaos_id}: {', '.join(names)}")
        events = alice.trace(chaos_id, limit=3)
        print(f"  trace tail: {[e['etype'] for e in events]}")
        faults = alice.fetch_artifact(chaos_id, "run.faults.jsonl")
        print(f"  fault events archived: "
              f"{len(faults.decode().splitlines())}")
        spans = alice.spans(chaos_id)
        print(f"  spans derived: {len(spans)}")

        # --- the guarantee: service == standalone -------------------
        for rec, spec in zip(finals, (JACOBI, CHAOS, MATMUL)):
            ref = standalone_run(RunSpec.from_dict(spec))
            assert rec["exit"]["elapsed_ticks"] == ref.elapsed, spec
        print("  bit-identity: all three service runs match their "
              "standalone virtual time")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    main()
