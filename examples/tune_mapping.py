#!/usr/bin/env python3
"""Performance-tuning a mapping (sections 4 and 9).

"When an application is run with PISCES 2 on a particular hardware
system, the program can be 'performance tuned' to some degree by
control of the mapping of virtual machine to hardware."  This example
automates that loop for a force program: sweep the number of secondary
(force) PEs, report the elapsed-time curve, then show *why* with the
per-PE occupancy chart from recorded engine slices.

Run:  python examples/tune_mapping.py
"""

from repro import TaskRegistry, api
from repro.analysis import force_size_sweep, idle_report, pe_gantt
from repro.flex.presets import nasa_langley_flex32

reg = TaskRegistry()


def region(m):
    # A sweep-heavy kernel: 32 iterations of 600 ticks each.
    for _ in m.presched(range(32)):
        m.compute(600)


@reg.tasktype("KERNEL")
def kernel(ctx):
    ctx.forcesplit(region)


def main():
    print("sweeping force sizes for KERNEL on the NASA FLEX/32 model:\n")
    result = force_size_sweep("KERNEL", reg, nasa_langley_flex32,
                              sizes=(1, 2, 4, 8))
    print(result.table())
    print(f"\nbest mapping: {result.best.label} "
          f"({result.best.elapsed} ticks)")
    print(result.best.configuration.describe())

    # Re-run the best mapping with slice recording to see PE occupancy.
    print("\nPE occupancy under the best mapping:")
    vm = api.make_vm(config=result.best.configuration, registry=reg,
                     machine=nasa_langley_flex32())
    vm.engine.record_slices = True
    api.run_app("KERNEL", vm=vm)
    print(pe_gantt(vm.engine.slices, width=64))
    print("\nidle analysis (PE, utilization, largest gap):")
    for pe, util, gap in idle_report(vm.engine.slices):
        print(f"  PE {pe:>2}: {100 * util:5.1f}% busy, "
              f"largest idle gap {gap} ticks")


if __name__ == "__main__":
    main()
