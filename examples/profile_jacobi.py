#!/usr/bin/env python3
"""Finding a serialization bug with the causal profiler.

A Jacobi force solver with an over-conservative guard: every row
update runs inside one CRITICAL section, so the force's members take
turns doing work that PRESCHED already made disjoint.  The answer is
still right -- the program is merely slow, which no correctness tool
flags.

``profile_run`` makes the cost visible without touching virtual time:
the wait-state table shows lock-wait dominating every member's
lifetime, and the critical path hops member to member through lock
hand-offs ("released lock-wait of ...") instead of running updates in
parallel.  Dropping the lock -- PRESCHED rows are disjoint and the
BARRIER already orders the copy-back -- collapses the lock-wait
column to zero and multiplies achieved parallelism by roughly the
force size.

Set ``PROFILE_JACOBI_OUT=<dir>`` to also write the flamegraph /
Chrome-trace / critical-path bundle (the CI profile-smoke job uploads
these as artifacts).

Run:  python examples/profile_jacobi.py
"""

import os

import numpy as np

from repro import profile_run
from repro.apps.jacobi import TICKS_PER_CELL, make_problem, reference_solution
from repro.core.task import TaskRegistry
from repro.obs.profile import WAIT_LOCK

N = 12
SWEEPS = 2
FORCE_PES = 3     # secondary PEs: the force has 4 members


def build_registry(serialized: bool) -> TaskRegistry:
    reg = TaskRegistry()

    def region(m):
        blk = m.common("GRID")
        g, new = blk.g, blk.new
        for _ in range(SWEEPS):
            for i in m.presched(range(1, N - 1)):
                if serialized:
                    # BUG (performance, not correctness): PRESCHED rows
                    # are disjoint, but the lock serializes them anyway.
                    with m.critical("GRID_LOCK"):
                        new[i, 1:-1] = 0.25 * (
                            g[i - 1, 1:-1] + g[i + 1, 1:-1]
                            + g[i, :-2] + g[i, 2:])
                        m.compute((N - 2) * TICKS_PER_CELL)
                else:
                    new[i, 1:-1] = 0.25 * (
                        g[i - 1, 1:-1] + g[i + 1, 1:-1]
                        + g[i, :-2] + g[i, 2:])
                    m.compute((N - 2) * TICKS_PER_CELL)

            def copy_back():
                g[1:-1, 1:-1] = new[1:-1, 1:-1]

            m.barrier(copy_back)

    @reg.tasktype("JACOBI", shared={"GRID": {"g": ("f8", (N, N)),
                                             "new": ("f8", (N, N))}})
    def jacobi(ctx):
        blk = ctx.common("GRID")
        blk.g[...] = make_problem(N)
        blk.new[...] = blk.g
        ctx.forcesplit(region)
        return np.array(blk.g, copy=True)

    return reg


def profile(serialized: bool):
    pr = profile_run("JACOBI", registry=build_registry(serialized),
                     n_clusters=1, force_pes_per_cluster=FORCE_PES)
    assert np.array_equal(pr.result.value, reference_solution(N, SWEEPS)), \
        "both variants must stay bit-exact vs the serial reference"
    return pr


def main():
    print(f"Jacobi {N}x{N}, {SWEEPS} sweeps, force of {FORCE_PES + 1} "
          f"members, every row update inside one CRITICAL section")
    print()

    slow = profile(serialized=True)
    acct = slow.profiler.accounting()
    lock_wait = acct.totals.get(WAIT_LOCK, 0)
    assert lock_wait > 0, "the seeded serialization must show up"
    print(f"profiled (seeded): elapsed {slow.elapsed} ticks, "
          f"efficiency {slow.critical_path.efficiency:.0%}, "
          f"lock-wait {lock_wait} ticks")
    print()
    print(slow.report())
    print()

    top = slow.critical_path.what_if(1)[0]
    print(f"top path segment: {top['kind']} {top['label']} on "
          f"PE{top['pe']} for {top['ticks']} ticks "
          f"(up to -{top['max_elapsed_saving_pct']}% elapsed if free)")
    hand_offs = sum("released lock-wait" in (s.detail or "")
                    for s in slow.critical_path.segments)
    print(f"critical path crosses {hand_offs} lock hand-off(s): the "
          f"members are taking turns, not working in parallel")
    print()

    print("fix: drop the CRITICAL section -- PRESCHED rows are disjoint "
          "and the BARRIER already orders the copy-back")
    print()
    fast = profile(serialized=False)
    acct = fast.profiler.accounting()
    assert acct.totals.get(WAIT_LOCK, 0) == 0, "no lock, no lock-wait"
    assert fast.elapsed < slow.elapsed
    assert fast.critical_path.efficiency > slow.critical_path.efficiency
    print(f"profiled (fixed):  elapsed {fast.elapsed} ticks, "
          f"efficiency {fast.critical_path.efficiency:.0%}, "
          f"lock-wait 0 ticks")
    print(f"speedup {slow.elapsed / fast.elapsed:.2f}x, parallelism "
          f"{slow.critical_path.parallelism:.2f} -> "
          f"{fast.critical_path.parallelism:.2f} "
          f"of {fast.critical_path.n_pes} PEs")

    out_dir = os.environ.get("PROFILE_JACOBI_OUT")
    if out_dir:
        bundle = {}
        bundle.update(slow.export(out_dir, prefix="jacobi.serialized"))
        bundle.update(fast.export(out_dir, prefix="jacobi.fixed"))
        print()
        for kind in sorted(bundle):
            print(f"wrote {kind}: {bundle[kind]}")

    slow.vm.shutdown()
    fast.vm.shutdown()


if __name__ == "__main__":
    main()
