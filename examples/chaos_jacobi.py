#!/usr/bin/env python3
"""Surviving a PE crash: RESTART supervision healing a Jacobi run.

A fault plan crashes PE 4 (cluster 2's primary) mid-computation.  The
fault-tolerant solver's workers run under ``RESTART`` supervision: the
task controller re-initiates the dead workers on the surviving
cluster, they announce themselves to the master, and the run converges
to the bit-exact fault-free answer.  The same crash without
supervision shows the other contract: the master ACCEPTs the system
``TASK_DIED`` message and terminates cleanly.

Run:  python examples/chaos_jacobi.py
"""

import numpy as np

from repro.apps.chaos_jacobi import run_chaos_jacobi
from repro.apps.jacobi import reference_solution
from repro.faults import RESTART, FaultPlan, PECrash

N = 16
SWEEPS = 2
CRASH = FaultPlan(seed=1, crashes=(PECrash(at=4_000, pe=4),),
                  name="crash-pe4")


def main():
    print(f"chaos Jacobi {N}x{N}, {SWEEPS} sweeps, "
          f"PE 4 crashes at t=4000")
    print()

    r = run_chaos_jacobi(n=N, sweeps=SWEEPS, n_workers=3,
                         supervision=RESTART(3, backoff_ticks=500),
                         on_death="reassign", fault_plan=CRASH)
    r.vm.shutdown()
    stats = r.vm.stats
    print("with RESTART(3) supervision:")
    print(f"  completed={r.completed} in {r.elapsed} ticks "
          f"({r.rounds} gather rounds)")
    print(f"  tasks died={stats.tasks_died} restarted={stats.tasks_restarted}")
    assert np.array_equal(r.grid, reference_solution(N, SWEEPS))
    print("  grid is bit-exact vs the fault-free reference")
    print()
    print("  fault events:")
    for ev in r.vm.faults.events:
        print(f"    t={ev.at:>6} {ev.kind:<18} {ev.detail}")
    print()

    r = run_chaos_jacobi(n=N, sweeps=SWEEPS, n_workers=3,
                         supervision=None, on_death="abort",
                         fault_plan=CRASH)
    r.vm.shutdown()
    print("without supervision (parent sees TASK_DIED and aborts):")
    print(f"  completed={r.completed}: {r.reason}")
    assert r.vm.engine.leaked_threads == []
    print("  terminated cleanly, no leaked threads")


if __name__ == "__main__":
    main()
