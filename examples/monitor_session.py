#!/usr/bin/env python3
"""An execution-environment monitor session (section 11).

Drives the 10-option monitor exactly the way an operator at the FLEX
terminal would: initiate tasks, peek at queues, send messages, watch PE
loading, dump system state, change tracing, kill a runaway task, and
finally terminate the run.  Also renders the live Figure 1 diagram and
exercises the observability extensions (options 10-12): live metrics,
structured trace export, and a Chrome trace of a Jacobi run you can
open in Perfetto / chrome://tracing.

Run:  python examples/monitor_session.py
"""

import tempfile
from pathlib import Path

from repro import TaskRegistry, Configuration, ClusterSpec, api
from repro.core.taskid import PARENT
from repro.exec_env import Monitor, render_vm_figure

reg = TaskRegistry()


@reg.tasktype("SERVER")
def server(ctx):
    """Accepts REQ messages until STOPped; replies to each sender."""
    served = 0
    while True:
        res = ctx.accept("REQ", "STOP", count=1, delay=800_000,
                         timeout_ok=True)
        if res.timed_out or res.messages[0].mtype == "STOP":
            return served
        ctx.send(res.sender, "REPLY", served)
        served += 1


@reg.tasktype("RUNAWAY")
def runaway(ctx):
    while True:
        ctx.compute(1000)


def main():
    cfg = Configuration(clusters=(ClusterSpec(1, 3, 4),
                                  ClusterSpec(2, 4, 4)),
                        name="monitor-demo")
    vm = api.make_vm(config=cfg, registry=reg)
    mon = Monitor(vm)

    print("=== menu (section 11) ===")
    print(mon.menu_text())

    print("\n=== 9 CHANGE TRACE OPTIONS ===")
    print(mon.change_trace_options(enable=("TASK_INIT", "TASK_TERM",
                                           "MSG_SEND", "MSG_ACCEPT")))

    print("\n=== 11 CHANGE METRIC OPTIONS (enable collection) ===")
    print(mon.change_metric_options(enable=True))

    print("\n=== 1 INITIATE A TASK (a server and a runaway) ===")
    r1 = mon.initiate_task("SERVER", cluster=1)
    r2 = mon.initiate_task("RUNAWAY", cluster=2)
    mon.pump()
    server_tid = vm.initiations[r1]
    runaway_tid = vm.initiations[r2]
    print(f"server is {server_tid}, runaway is {runaway_tid}")

    print("\n=== 5 DISPLAY RUNNING TASKS ===")
    print(mon.display_running_tasks())

    print("\n=== Figure 1, live ===")
    print(render_vm_figure(vm))

    print("\n=== 3 SEND A MESSAGE (two requests to the server) ===")
    print(mon.send_message(server_tid, "REQ", "first"))
    print(mon.send_message(server_tid, "REQ", "second"))
    mon.pump()
    print(f"user terminal received: "
          f"{[(m, a) for m, a, _, _ in vm.user_messages]}")

    print("\n=== 6 DISPLAY MESSAGE QUEUE (server, after serving) ===")
    print(mon.display_message_queue(server_tid))

    print("\n=== 8 DISPLAY PE LOADING ===")
    print(mon.display_pe_loading())

    print("\n=== 2 KILL A TASK (the runaway) ===")
    print(mon.kill_task(runaway_tid))
    mon.pump()

    print("\n=== 7 DUMP SYSTEM STATE ===")
    print(mon.dump_system_state())

    print("\n=== 10 DISPLAY METRICS ===")
    print(mon.display_metrics())

    outdir = Path(tempfile.mkdtemp(prefix="pisces-obs-"))
    print("\n=== 12 EXPORT TRACE ===")
    print(mon.export_trace(str(outdir), prefix="session"))

    print("\n=== 0 TERMINATE THE RUN ===")
    print(mon.terminate_run())
    return outdir


def jacobi_chrome_trace(outdir: Path):
    """A metered, traced Jacobi run exported as a Chrome trace file."""
    from repro.apps.jacobi import run_jacobi_windows
    from repro.obs import derive_spans, span_summary

    cfg = Configuration(
        clusters=tuple(ClusterSpec(number=i, primary_pe=2 + i, slots=4)
                       for i in range(1, 3)),
        name="jacobi-traced",
        trace_events=("TASK_INIT", "TASK_TERM", "MSG_SEND", "MSG_ACCEPT",
                      "LOCK", "UNLOCK"),
        metrics_enabled=True)
    r = run_jacobi_windows(n=16, sweeps=2, n_workers=2, config=cfg)
    paths = api.export_run(r.vm, outdir, prefix="jacobi")
    print(f"jacobi run: {r.elapsed} virtual ticks, "
          f"residual {r.residual:.2e}")
    for kind, p in sorted(paths.items()):
        print(f"  wrote {kind}: {p}")
    summary = span_summary(derive_spans(r.vm.tracer.events))
    for cat, d in sorted(summary.items()):
        print(f"  {cat}: {d['count']} spans, {d['total_ticks']} ticks")
    print(f"open {paths['chrome']} in Perfetto / chrome://tracing")


if __name__ == "__main__":
    outdir = main()
    print("\n=== Chrome trace of a Jacobi run ===")
    jacobi_chrome_trace(outdir)
