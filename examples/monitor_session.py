#!/usr/bin/env python3
"""An execution-environment monitor session (section 11).

Drives the 10-option monitor exactly the way an operator at the FLEX
terminal would: initiate tasks, peek at queues, send messages, watch PE
loading, dump system state, change tracing, kill a runaway task, and
finally terminate the run.  Also renders the live Figure 1 diagram.

Run:  python examples/monitor_session.py
"""

from repro import PiscesVM, TaskRegistry, Configuration, ClusterSpec
from repro.core.taskid import PARENT
from repro.exec_env import Monitor, render_vm_figure

reg = TaskRegistry()


@reg.tasktype("SERVER")
def server(ctx):
    """Accepts REQ messages until STOPped; replies to each sender."""
    served = 0
    while True:
        res = ctx.accept("REQ", "STOP", count=1, delay=800_000,
                         timeout_ok=True)
        if res.timed_out or res.messages[0].mtype == "STOP":
            return served
        ctx.send(res.sender, "REPLY", served)
        served += 1


@reg.tasktype("RUNAWAY")
def runaway(ctx):
    while True:
        ctx.compute(1000)


def main():
    cfg = Configuration(clusters=(ClusterSpec(1, 3, 4),
                                  ClusterSpec(2, 4, 4)),
                        name="monitor-demo")
    vm = PiscesVM(cfg, registry=reg)
    mon = Monitor(vm)

    print("=== menu (section 11) ===")
    print(mon.menu_text())

    print("\n=== 9 CHANGE TRACE OPTIONS ===")
    print(mon.change_trace_options(enable=("TASK_INIT", "TASK_TERM",
                                           "MSG_SEND")))

    print("\n=== 1 INITIATE A TASK (a server and a runaway) ===")
    r1 = mon.initiate_task("SERVER", cluster=1)
    r2 = mon.initiate_task("RUNAWAY", cluster=2)
    mon.pump()
    server_tid = vm.initiations[r1]
    runaway_tid = vm.initiations[r2]
    print(f"server is {server_tid}, runaway is {runaway_tid}")

    print("\n=== 5 DISPLAY RUNNING TASKS ===")
    print(mon.display_running_tasks())

    print("\n=== Figure 1, live ===")
    print(render_vm_figure(vm))

    print("\n=== 3 SEND A MESSAGE (two requests to the server) ===")
    print(mon.send_message(server_tid, "REQ", "first"))
    print(mon.send_message(server_tid, "REQ", "second"))
    mon.pump()
    print(f"user terminal received: "
          f"{[(m, a) for m, a, _, _ in vm.user_messages]}")

    print("\n=== 6 DISPLAY MESSAGE QUEUE (server, after serving) ===")
    print(mon.display_message_queue(server_tid))

    print("\n=== 8 DISPLAY PE LOADING ===")
    print(mon.display_pe_loading())

    print("\n=== 2 KILL A TASK (the runaway) ===")
    print(mon.kill_task(runaway_tid))
    mon.pump()

    print("\n=== 7 DUMP SYSTEM STATE ===")
    print(mon.dump_system_state())

    print("\n=== 0 TERMINATE THE RUN ===")
    print(mon.terminate_run())


if __name__ == "__main__":
    main()
