#!/usr/bin/env python3
"""Heat-plate relaxation two ways: windows vs a force.

The same Jacobi solver written in the paper's two styles:

* section 8 style -- a master owns the grid and distributes *windows*
  on row blocks to worker tasks (array bytes move exactly once);
* section 7 style -- one task FORCESPLITs; members share the grid in
  SHARED COMMON, take rows by PRESCHED, and barrier between sweeps.

The run prints both results (identical grids), the data-movement
difference, and the force-size speedup curve.

Run:  python examples/jacobi_heat.py
"""

import numpy as np

from repro.analysis.metrics import ScalingPoint, speedup_table
from repro.apps.jacobi import (
    reference_solution,
    run_jacobi_force,
    run_jacobi_windows,
)

N = 24
SWEEPS = 4


def main():
    print(f"Jacobi {N}x{N}, {SWEEPS} sweeps")
    print()

    rw = run_jacobi_windows(n=N, sweeps=SWEEPS, n_workers=4)
    rw.vm.shutdown()
    print(f"windows version : elapsed {rw.elapsed:>7} ticks, "
          f"{rw.stats_window_bytes} array bytes moved through windows")

    rf = run_jacobi_force(n=N, sweeps=SWEEPS, force_pes=3)
    rf.vm.shutdown()
    print(f"force version   : elapsed {rf.elapsed:>7} ticks, "
          f"0 bytes moved (SHARED COMMON)")

    ref = reference_solution(N, SWEEPS)
    assert np.allclose(rw.grid, ref) and np.allclose(rf.grid, ref)
    print("both match the serial reference solution")
    print()

    print("force scaling (same program text, configuration-chosen size):")
    points = []
    for size in (1, 2, 4):
        r = run_jacobi_force(n=N, sweeps=SWEEPS, force_pes=size - 1)
        r.vm.shutdown()
        points.append(ScalingPoint(f"force-{size}", size, r.elapsed))
    print(speedup_table(points))


if __name__ == "__main__":
    main()
