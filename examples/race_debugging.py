#!/usr/bin/env python3
"""Debugging a data race with the happens-before detector.

A Jacobi force solver with a classic bug: after computing its sweep
into ``new``, each member copies *its own* rows back into ``g`` with no
intervening BARRIER.  Round-robin PRESCHED gives adjacent rows to
different members, so one member's copy-back write to ``g[i]`` races a
neighbour's five-point-stencil read of the same row in the next sweep.
The run still "works" most of the time under a deterministic scheduler
-- exactly the kind of latent bug the detector exists for.

``check_races`` flags the unordered write/read pair with both sides'
evidence (process, extents, recent synchronization ops); adding the
BARRIER -- the shipped solver's ``m.barrier(copy_back)`` pattern --
makes the same program verifiably clean and bit-exact against the
serial reference.

Run:  python examples/race_debugging.py
"""

import numpy as np

from repro import check_races
from repro.apps.jacobi import make_problem, reference_solution
from repro.core.task import TaskRegistry

N = 12
SWEEPS = 2
FORCE_PES = 3     # secondary PEs: the force has 4 members


def build_registry(guarded: bool) -> TaskRegistry:
    reg = TaskRegistry()

    def region(m):
        blk = m.common("GRID")
        g, new = blk.g, blk.new
        for _ in range(SWEEPS):
            for i in m.presched(range(1, N - 1)):
                new[i, 1:-1] = 0.25 * (g[i - 1, 1:-1] + g[i + 1, 1:-1]
                                       + g[i, :-2] + g[i, 2:])
            if guarded:
                def copy_back():
                    g[1:-1, 1:-1] = new[1:-1, 1:-1]

                m.barrier(copy_back)
            else:
                # BUG: no barrier -- a neighbour may still be reading
                # g[i] for its stencil while we overwrite it.
                for i in m.presched(range(1, N - 1)):
                    g[i, 1:-1] = new[i, 1:-1]

    @reg.tasktype("JACOBI", shared={"GRID": {"g": ("f8", (N, N)),
                                             "new": ("f8", (N, N))}})
    def jacobi(ctx):
        blk = ctx.common("GRID")
        blk.g[...] = make_problem(N)
        blk.new[...] = blk.g
        ctx.forcesplit(region)
        return np.array(blk.g, copy=True)

    return reg


def main():
    print(f"Jacobi {N}x{N}, {SWEEPS} sweeps, force of {FORCE_PES + 1} "
          f"members, per-member copy-back with no barrier")
    print()

    chk = check_races("JACOBI", registry=build_registry(guarded=False),
                      n_clusters=1, force_pes_per_cluster=FORCE_PES)
    assert not chk.clean, "the seeded race must be detected"
    print(f"detector: {len(chk.reports)} race(s) on GRID "
          f"({chk.detector.accesses_checked} accesses checked)")
    print()
    first = chk.reports[0]
    print(first.describe())
    print()

    print("fix: replace the copy-back loop with m.barrier(copy_back)")
    print()
    chk = check_races("JACOBI", registry=build_registry(guarded=True),
                      n_clusters=1, force_pes_per_cluster=FORCE_PES)
    assert chk.clean and not chk.warnings, "the fixed program must be clean"
    print(f"detector: clean "
          f"({chk.detector.accesses_checked} accesses checked, 0 races)")
    assert np.array_equal(chk.result.value, reference_solution(N, SWEEPS))
    print("grid is bit-exact vs the serial reference")


if __name__ == "__main__":
    main()
