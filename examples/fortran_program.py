#!/usr/bin/env python3
"""A complete Pisces Fortran program through the preprocessor.

Section 10's pipeline: extended-Fortran source -> preprocessor ->
host-language code with run-time-library calls -> run on the virtual
machine.  The program below uses most of the extensions: INITIATE,
taskid variables, SEND/ACCEPT with a DELAY clause, a HANDLER
subroutine, and a force phase with SHARED COMMON + PRESCHED + CRITICAL
+ BARRIER.

Run:  python examples/fortran_program.py [--show-python]
"""

import sys

from repro import Configuration, ClusterSpec, api
from repro.fortran import preprocess

SOURCE = """
C ----------------------------------------------------------------
C Pi by force: a master initiates a force task that integrates
C 4/(1+x*x) over [0,1] with prescheduled strips, then reports back.
C ----------------------------------------------------------------
TASK MAIN
INTEGER NSTRIP
HANDLER ANSWER
NSTRIP = 256
ON CLUSTER 1 INITIATE PIFORCE(NSTRIP)
ACCEPT OF
  1 OF ANSWER
DELAY 2000000 THEN
  PRINT *, 'NO ANSWER IN TIME'
END ACCEPT
END TASK

HANDLER ANSWER(PI)
REAL PI
PRINT *, 'PI IS ABOUT', PI
END HANDLER

TASK PIFORCE(N)
INTEGER N, I
REAL H, X
SHARED COMMON /ACC/ TOTAL
REAL TOTAL
LOCK L
H = 1.0 / N
FORCESPLIT
PRESCHED DO 10 I = 1, N
  X = H * (I - 0.5)
  COMPUTE 8
  CRITICAL L
    TOTAL = TOTAL + 4.0 / (1.0 + X * X)
  END CRITICAL
10 CONTINUE
BARRIER
  TO PARENT SEND ANSWER(TOTAL * H)
END BARRIER
END TASK
"""


def main():
    program = preprocess(SOURCE)
    if "--show-python" in sys.argv:
        print("----- generated Python -----")
        print(program.python_source)
        print("----------------------------")

    cfg = Configuration(
        clusters=(ClusterSpec(1, 3, 4, secondary_pes=(7, 8, 9)),),
        name="pi-force")
    vm = api.make_vm(config=cfg, registry=program.registry)
    result = api.run_app("MAIN", vm=vm)
    print(result.console)
    print(f"elapsed {result.elapsed} ticks with a force of "
          f"{vm.clusters[1].force_size}")
    # The midpoint rule at 256 strips nails pi to ~1e-5.
    line = [l for l in result.console.splitlines() if "PI IS" in l][0]
    pi = float(line.rsplit(" ", 1)[1])
    assert abs(pi - 3.14159265) < 1e-4
    return result


if __name__ == "__main__":
    main()
