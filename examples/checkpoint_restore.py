#!/usr/bin/env python3
"""Surviving ``kill -9``: checkpoint, crash, restore, same answer.

A fault-tolerant Jacobi solver runs with periodic checkpointing and a
:class:`~repro.faults.HostKill` in its fault plan -- mid-run, the
*host process itself* is SIGKILLed, the hardest crash there is: no
atexit hooks, no flushing, nothing but whatever already reached disk.

This script plays all three roles:

1. **reference** (in-process) -- the same solve, uninterrupted, with
   checkpointing off.  This is the answer recovery must reproduce.
2. **victim** (subprocess, ``--victim``) -- checkpointing on, host
   kill armed.  The parent observes exit code ``-SIGKILL`` and a
   ``.pckpt`` bundle left behind.
3. **recovery** (in-process) -- ``find_latest_checkpoint`` +
   ``restore_vm`` + ``resume()`` in a process that never saw the
   original run.  The restored VM replays the recorded schedule
   prefix, validates its state digest, switches to live execution and
   finishes the solve.

The payoff is the final comparison: elapsed virtual time, the result
grid, and the *entire trace stream* of the recovered run are
bit-identical to the uninterrupted reference.  Recovery does not
approximate the crashed run -- it completes it.

Run:  python examples/checkpoint_restore.py
"""

import hashlib
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.apps.chaos_jacobi import build_chaos_registry, run_chaos_jacobi
from repro.checkpoint import find_latest_checkpoint, restore_vm
from repro.config.configuration import ClusterSpec, Configuration
from repro.faults import RESTART, FaultPlan, HostKill

N, SWEEPS, N_WORKERS = 10, 2, 3
SUPERVISION = RESTART(3, backoff_ticks=500)
RESEND_DELAY, IDLE_TIMEOUT, MAX_ROUNDS = 8_000, 60_000, 200
CHECKPOINT_EVERY = 500          # virtual ticks between bundles
KILL_AT = 5_000                 # virtual tick of the SIGKILL
TRACE = ("FAULT", "MSG_SEND", "MSG_ACCEPT")


def config(core: str = "threaded", ckpt_dir: str = "") -> Configuration:
    return Configuration(
        clusters=(ClusterSpec(1, 3, 4), ClusterSpec(2, 4, 4)),
        name="ckpt-example", trace_events=TRACE, exec_core=core,
        checkpoint_every=CHECKPOINT_EVERY if ckpt_dir else 0,
        checkpoint_dir=ckpt_dir, checkpoint_keep=3, run_seed=11)


def registry():
    return build_chaos_registry(N, SWEEPS, N_WORKERS, SUPERVISION,
                                "reassign", RESEND_DELAY, IDLE_TIMEOUT,
                                MAX_ROUNDS)


def plan(host_kill: bool) -> FaultPlan:
    kills = (HostKill(at=KILL_AT),) if host_kill else ()
    return FaultPlan(seed=3, host_kills=kills, name="example")


def solve(ckpt_dir: str = "", host_kill: bool = False):
    return run_chaos_jacobi(
        n=N, sweeps=SWEEPS, n_workers=N_WORKERS, supervision=SUPERVISION,
        on_death="reassign", resend_delay=RESEND_DELAY,
        idle_timeout=IDLE_TIMEOUT, max_rounds=MAX_ROUNDS,
        config=config(ckpt_dir=ckpt_dir), fault_plan=plan(host_kill))


def grid_sha(grid) -> str:
    return hashlib.sha256(np.ascontiguousarray(grid).tobytes()).hexdigest()


def main() -> None:
    if len(sys.argv) > 2 and sys.argv[1] == "--victim":
        # Role 2: this invocation dies by its own fault plan.
        solve(ckpt_dir=sys.argv[2], host_kill=True)
        sys.exit(3)   # unreachable unless the kill failed to fire

    print(__doc__.split("\n", 1)[0])

    print("\n[1] reference: uninterrupted solve, checkpointing off")
    ref = solve()
    ref.vm.shutdown()
    ref_trace = [e.line() for e in ref.vm.tracer.events]
    print(f"    elapsed {ref.elapsed} virtual ticks, "
          f"{ref.rounds} rounds, grid {grid_sha(ref.grid)[:12]}...")

    with tempfile.TemporaryDirectory() as ckpt_dir:
        print(f"\n[2] victim: same solve + checkpoints every "
              f"{CHECKPOINT_EVERY} ticks + HostKill at {KILL_AT}")
        proc = subprocess.run(
            [sys.executable, __file__, "--victim", ckpt_dir],
            capture_output=True, text=True)
        assert proc.returncode == -signal.SIGKILL, (
            f"victim exited {proc.returncode}, wanted "
            f"{-signal.SIGKILL}:\n{proc.stderr}")
        bundles = sorted(p.name for p in Path(ckpt_dir).glob("*.pckpt"))
        assert bundles, "victim died before writing any checkpoint"
        print(f"    killed by SIGKILL (exit {proc.returncode}); "
              f"{len(bundles)} bundle(s) survived:")
        for b in bundles:
            print(f"      {b}")

        print("\n[3] recovery: restore the latest bundle, resume to the end")
        latest = find_latest_checkpoint(ckpt_dir)
        rr = restore_vm(latest, registry=registry())
        print(f"    restored at virtual tick {rr.manifest['now']} "
              f"(dispatch {rr.manifest['dispatch_seq']})")
        res = rr.resume()
        grid, reason, rounds = res.value
        res_trace = [e.line() for e in rr.vm.tracer.events]
        print(f"    resumed: elapsed {res.elapsed} ticks, "
              f"{rounds} rounds, grid {grid_sha(grid)[:12]}...")

    assert res.elapsed == ref.elapsed, "virtual elapsed diverged"
    assert grid_sha(grid) == grid_sha(ref.grid), "result grid diverged"
    assert rounds == ref.rounds and reason == ref.reason
    assert res_trace == ref_trace, "trace stream diverged"
    print(f"\nrecovered run is bit-identical to the reference: "
          f"elapsed {res.elapsed}, {len(res_trace)} trace lines, "
          f"same grid.")


if __name__ == "__main__":
    main()
