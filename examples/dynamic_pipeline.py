#!/usr/bin/env python3
"""Dynamic topologies: a pipeline and a self-balancing worker pool.

Two task-level patterns from section 6's communication model:

* a pipeline wired at run time by exchanging taskids (source -> stages
  -> sink), streaming items through ITEM/EOS messages;
* a master/worker integrator where idle workers request the "next"
  piece -- the message-passing analogue of SELFSCHED -- shown against
  the skew in per-piece cost.

Run:  python examples/dynamic_pipeline.py
"""

from repro.apps.integrate import run_integrate
from repro.apps.pipeline import run_pipeline


def main():
    print("pipeline: 4 stages, each increments the item")
    r = run_pipeline(n_stages=4, items=list(range(8)))
    r.vm.shutdown()
    print(f"  in : {list(range(8))}")
    print(f"  out: {r.outputs}")
    print(f"  elapsed {r.elapsed} ticks, "
          f"{r.vm.stats.messages_sent} messages")
    assert r.outputs == [i + 4 for i in range(8)]
    print()

    print("dynamic integration: 24 pieces with 1x/2x/3x skewed cost, "
          "4 workers")
    ri = run_integrate(pieces=24, points_per_piece=8, n_workers=4)
    ri.vm.shutdown()
    print(f"  integral = {ri.value:.6f} (reference {ri.exact:.6f})")
    print(f"  pieces per worker: {dict(sorted(ri.per_worker.items()))}")
    print(f"  elapsed {ri.elapsed} ticks")
    assert abs(ri.value - ri.exact) < 0.02 * abs(ri.exact)
    spread = max(ri.per_worker.values()) - min(ri.per_worker.values())
    print(f"  load spread: {spread} pieces "
          f"(idle workers pulled the next piece)")


if __name__ == "__main__":
    main()
