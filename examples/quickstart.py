#!/usr/bin/env python3
"""Quickstart: the PISCES 2 programming model in one small program.

A MAIN task initiates four WORKER tasks (ON ANY INITIATE ...); the
workers announce themselves to their parent -- the paper's topology-
building idiom, since INITIATE never returns the child's taskid -- and
MAIN then sends each a GO, collects the DONE replies, and reports to
the USER terminal.

Run:  python examples/quickstart.py
"""

from repro import ANY, PARENT, SENDER, USER, TaskRegistry, api

reg = TaskRegistry()


@reg.tasktype("WORKER")
def worker(ctx, n):
    """One worker: hello -> wait for GO -> compute -> reply DONE."""
    ctx.send(PARENT, "HELLO", n)          # parent learns our taskid
    go = ctx.accept("GO")                 # blocks until GO arrives
    ctx.compute(100 * (n + 1))            # charge virtual work
    ctx.send(SENDER, "DONE", n, n * n)


@reg.tasktype("MAIN")
def main(ctx):
    n_workers = 4
    for i in range(n_workers):
        ctx.initiate("WORKER", i, on=ANY)

    # Phase 1: collect taskids from the HELLOs.
    kids = {}
    res = ctx.accept("HELLO", count=n_workers)
    for m in res.messages:
        kids[m.args[0]] = m.sender

    # Phase 2: start everyone, then gather results (with a DELAY guard).
    for i, tid in kids.items():
        ctx.send(tid, "GO")
    res = ctx.accept("DONE", count=n_workers, delay=1_000_000)

    total = sum(m.args[1] for m in res.messages)
    ctx.send(USER, "REPORT", "sum of squares", total)
    ctx.print(f"sum of squares 0..{n_workers - 1} = {total}")
    return total


def main_program():
    result = api.run_app("MAIN", registry=reg,
                         n_clusters=2, slots=4, name="quickstart")
    print(result.console)
    print(f"result = {result.value}")
    print(f"elapsed virtual time = {result.elapsed} ticks")
    print(f"messages sent = {result.stats.messages_sent}, "
          f"accepted = {result.stats.messages_accepted}")
    assert result.value == 0 + 1 + 4 + 9
    return result


if __name__ == "__main__":
    main_program()
