#!/usr/bin/env python3
"""The coop execution core: coroutine process bodies, no threads.

PISCES processes are discrete-event coroutines.  The threaded core
(the seed's design and the determinism oracle) parks every process on
its own OS thread and moves a baton between them; the coop core runs
the same programs as generators on a single-threaded event loop, so a
dispatch is one ``gen.send()`` -- roughly 15x the dispatch throughput
(BENCH_engine_throughput.json).

A process body written as a generator yields *kernel operations*:

* ``co_charge(n)``   -- charge n ticks of virtual work
* ``co_preempt(n)``  -- yield the PE, rejoin the ready queue
* ``co_block(kind)`` -- block until woken (optionally with a deadline)

The contract demonstrated below: virtual time, dispatch counts, and
per-process results are **bit-identical** across cores.  Only wall
time differs.

Run:  python examples/coop_core.py
"""

import time

from repro.flex.presets import small_flex
from repro.mmos.process import co_block, co_charge, co_preempt
from repro.mmos.scheduler import create_engine

N_PROCS, SWITCHES, N_PES = 60, 40, 8


def run_core(exec_core):
    """Run the identical coroutine program on the given core."""
    eng = create_engine(small_flex(N_PES), dispatcher="indexed",
                        exec_core=exec_core)
    pes = sorted(eng.machine.pes)

    def body():
        acc = 0
        for i in range(SWITCHES):
            yield co_charge(3)
            acc += i
            yield co_preempt(2)
            if i % 5 == 4:                       # periodic deadline nap
                yield co_block("nap", deadline=eng.now() + 7)
        return acc

    procs = [eng.spawn(f"w{k}", pes[k % len(pes)], body)
             for k in range(N_PROCS)]

    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    fp = (eng.machine.elapsed(), eng.dispatch_count,
          tuple(sorted((p.name, p.result) for p in procs)))
    eng.shutdown()
    return fp, wall


def main():
    (vt_thr, disp_thr, res_thr), wall_thr = run_core("threaded")
    (vt_coop, disp_coop, res_coop), wall_coop = run_core("coop")

    # The determinism contract: everything virtual is bit-identical.
    assert vt_coop == vt_thr, (vt_coop, vt_thr)
    assert disp_coop == disp_thr, (disp_coop, disp_thr)
    assert res_coop == res_thr

    expected = sum(range(SWITCHES))
    assert all(r == expected for _, r in res_coop)

    print(f"{N_PROCS} processes x {SWITCHES} switches on {N_PES} PEs")
    print(f"  virtual time : {vt_thr} ticks on both cores (bit-identical)")
    print(f"  dispatches   : {disp_thr} on both cores")
    print(f"  threaded core: {wall_thr * 1e3:8.1f} ms "
          f"({disp_thr / wall_thr:10,.0f} dispatches/s)")
    print(f"  coop core    : {wall_coop * 1e3:8.1f} ms "
          f"({disp_coop / wall_coop:10,.0f} dispatches/s)")
    if wall_coop < wall_thr:
        print(f"  speedup      : {wall_thr / wall_coop:.1f}x wall")


if __name__ == "__main__":
    main()
