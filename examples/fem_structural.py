#!/usr/bin/env python3
"""Structural analysis inside a force: the paper's motivating port.

Section 14 plans "porting a large existing finite element/structural
analysis code" as the first real application.  This example is that
exercise in miniature: an axially loaded elastic bar is assembled into
a stiffness system K u = f and solved by conjugate gradients *inside a
force* -- PRESCHED row partitioning, CRITICAL-protected reductions into
SHARED COMMON, BARRIERs between CG phases.

The run validates the tip displacement against the closed-form
u(L) = P L / (E A) and shows the force-size scaling.

Run:  python examples/fem_structural.py
"""

import numpy as np

from repro.apps.fem import FEMProblem, run_fem


def main():
    problem = FEMProblem(n_elements=24, youngs_modulus=70e3, area=0.25,
                         length=2.0, load=12.5)
    print(f"bar: {problem.n_elements} elements, E={problem.youngs_modulus}, "
          f"A={problem.area}, L={problem.length}, end load {problem.load}")
    print(f"closed-form tip displacement: "
          f"{problem.exact_tip_displacement():.6f}")
    print()

    for force_pes in (0, 3, 7):
        r = run_fem(n_elements=problem.n_elements, force_pes=force_pes,
                    problem=problem)
        r.vm.shutdown()
        print(f"force of {force_pes + 1:>2}: tip u = "
              f"{r.tip_displacement:.6f}  "
              f"({r.iterations} CG iterations, residual {r.residual:.2e}, "
              f"elapsed {r.elapsed} ticks)")
        assert abs(r.tip_displacement
                   - problem.exact_tip_displacement()) < 1e-6

    # Cross-check the whole displacement field against numpy.
    r = run_fem(n_elements=problem.n_elements, force_pes=3,
                problem=problem)
    r.vm.shutdown()
    exact = np.linalg.solve(problem.stiffness(), problem.load_vector())
    assert np.allclose(r.displacements, exact, atol=1e-8)
    print()
    print("displacement field matches the direct solve to 1e-8")

    # The 2-D version: a Pratt bridge truss under gravity loads.
    from repro.apps.truss import pratt_truss, run_truss
    print("\n2-D Pratt truss (6 panels, gravity loads at bottom joints):")
    truss_problem = pratt_truss(n_panels=6)
    rt = run_truss(problem=truss_problem, force_pes=3)
    rt.vm.shutdown()
    ref = truss_problem.direct_solution()
    assert np.allclose(rt.displacements, ref, atol=1e-7)
    print(f"  midspan deflection {rt.midspan_deflection:.6f} "
          f"({rt.iterations} CG iterations, residual {rt.residual:.2e}, "
          f"elapsed {rt.elapsed} ticks)")
    print("  matches numpy's direct solve to 1e-7")


if __name__ == "__main__":
    main()
