#!/usr/bin/env python3
"""Parallel file I/O through windows (sections 1 and 8).

"Windows also provide a uniform access method for large arrays on
secondary storage" -- and PISCES 3 was announced to emphasize parallel
I/O.  This example stores a 512 KB matrix in the simulated file system,
has four tasks read disjoint row-block windows concurrently, and shows
the effect of striping the file controller's disk array: per-disk
counters, elapsed I/O time for 1 vs 4 disks, and the consistency of an
overlapping read-modify-write sequence.

Run:  python examples/parallel_io.py
"""

import numpy as np

from repro import Configuration, ClusterSpec, TaskRegistry, api
from repro.core.taskid import PARENT, SAME

N = 256                       # matrix is N x N float64 = 512 KB

reg = TaskRegistry()


@reg.tasktype("IOREADER")
def ioreader(ctx, k, parts):
    w = ctx.file_window("MATRIX")
    mine = w.split(parts, axis=0)[k]
    t0 = ctx.now()
    data = ctx.window_read(mine)
    ctx.send(PARENT, "DONE", k, float(data.sum()), ctx.now() - t0)


@reg.tasktype("IOMAIN")
def iomain(ctx, parts):
    t0 = ctx.now()
    for k in range(parts):
        ctx.initiate("IOREADER", k, parts, on=SAME)
    res = ctx.accept("DONE", count=parts)
    total = sum(m.args[1] for m in res.messages)
    return total, ctx.now() - t0


def run(n_disks: int):
    cfg = Configuration(clusters=(ClusterSpec(1, 3, 6),),
                        name=f"io-{n_disks}d")
    vm = api.make_vm(config=cfg, registry=reg)
    vm.export_file("MATRIX", np.arange(float(N * N)).reshape(N, N))
    vm.configure_file_disks(n_disks, stripe_unit=32 * 1024)
    result = api.run_app("IOMAIN", 4, vm=vm, shutdown=False)
    return vm, result


def main():
    expect = float(np.arange(float(N * N)).sum())

    vm1, r1 = run(1)
    total1, t1 = r1.value
    vm1.shutdown()
    print(f"1 disk : 4 concurrent window readers finished in {t1} ticks")

    vm4, r4 = run(4)
    total4, t4 = r4.value
    print(f"4 disks: the same reads finished in {t4} ticks "
          f"({t1 / t4:.2f}x)")
    assert total1 == total4 == expect

    print("\nper-disk counters (4-disk case):")
    print(vm4.file_controller.disks.describe())
    vm4.shutdown()

    # Read-modify-write consistency through overlapping file windows.
    reg2 = TaskRegistry()

    @reg2.tasktype("BUMP")
    def bump(ctx, k):
        w = ctx.file_window("V").shrink(rows=(k * 2, k * 2 + 4))
        vals = ctx.window_read(w)
        ctx.window_write(w, vals + 1.0)
        ctx.send(PARENT, "OK")

    @reg2.tasktype("RMW")
    def rmw(ctx):
        for k in range(3):
            ctx.initiate("BUMP", k, on=SAME)
        ctx.accept("OK", count=3)

    cfg = Configuration(clusters=(ClusterSpec(1, 3, 5),), name="rmw")
    vm = api.make_vm(config=cfg, registry=reg2)
    vm.export_file("V", np.zeros(8))
    api.run_app("RMW", vm=vm, shutdown=False)
    final = vm.file_controller.arrays.get("V")
    print(f"\noverlapping read-modify-writes on an 8-vector "
          f"(windows [0:4),[2:6),[4:8)): {final.tolist()}")
    print("each TRANSFER is atomic (no torn values) -- but concurrent")
    print("read-modify-write loses updates, exactly as on real storage:")
    print("partition disjointly (the section-8 pattern) to avoid it.")
    assert set(final.tolist()) <= {1.0, 2.0}   # atomic, maybe lost
    vm.shutdown()

    # The disjoint-partition version: every increment lands.
    reg3 = TaskRegistry()

    @reg3.tasktype("BUMP")
    def bump3(ctx, k):
        w = ctx.file_window("V").split(3, axis=0)[k]
        vals = ctx.window_read(w)
        ctx.window_write(w, vals + 1.0)
        ctx.send(PARENT, "OK")

    @reg3.tasktype("RMW")
    def rmw3(ctx):
        for k in range(3):
            ctx.initiate("BUMP", k, on=SAME)
        ctx.accept("OK", count=3)

    vm = api.make_vm(config=cfg, registry=reg3)
    vm.export_file("V", np.zeros(9))
    api.run_app("RMW", vm=vm, shutdown=False)
    final = vm.file_controller.arrays.get("V")
    print(f"disjoint split(3) partitions instead: {final.tolist()}")
    assert final.sum() == 9.0
    vm.shutdown()


if __name__ == "__main__":
    main()
