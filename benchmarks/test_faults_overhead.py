"""Zero-fault overhead: a VM with no fault plan must be free.

The fault layer is threaded through the scheduler (`_fault_pump`), the
message path (checksum stamping, per-delivery decisions) and the task
controller; every hook is guarded so that a plan-less run takes none of
them.  This benchmark proves it two ways:

* **history identity** -- each workload of the engine-throughput
  benchmark, re-run today with no plan, replays the *bit-identical*
  virtual time and dispatch count recorded in the committed
  ``BENCH_engine_throughput.json`` baseline (written before the fault
  layer existed);
* **wall-clock** -- the largest scheduler-stress configuration must not
  regress more than 5% against the baseline's wall time (best of 3).

``ENGINE_BENCH_SMOKE`` shrinks sizes; the baseline was recorded at full
size, so the smoke run checks self-identity (two plan-less runs agree)
instead of baseline identity.  Writes ``BENCH_faults_overhead.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import test_engine_throughput as eng_bench
from _bench_schema import make_record, write_bench

SMOKE = bool(os.environ.get("ENGINE_BENCH_SMOKE"))
ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = ROOT / "BENCH_engine_throughput.json"
OUT_PATH = ROOT / "BENCH_faults_overhead.json"

#: Allowed wall-clock regression for the plan-less fast path.
MAX_WALL_REGRESSION = 1.05


def test_no_plan_is_bit_identical_to_baseline(report):
    baseline = (json.loads(BASELINE_PATH.read_text())
                if BASELINE_PATH.exists() else None)
    compare_baseline = (baseline is not None and not SMOKE
                        and not baseline.get("smoke"))
    by_key = ({(r["workload"], r["size"]): r
               for r in baseline["workloads"]} if compare_baseline else {})

    rows = []
    report("zero-fault overhead: plan-less VM vs pre-faults baseline")
    header = (f"{'workload':<16} {'size':<6} {'vtime':>8} {'disp':>6} "
              f"{'baseline':>9} {'verdict':>10}")
    report(header)
    report("-" * len(header))
    for workload, size, runner, params in eng_bench._sizes():
        wall, dispatches, vt = runner("indexed")
        if compare_baseline:
            base = by_key[(workload, size)]
            assert vt == base["virtual_elapsed"], (
                f"{workload}/{size}: virtual time {vt} != baseline "
                f"{base['virtual_elapsed']} -- the plan-less path "
                f"perturbed the engine history")
            assert dispatches == base["dispatches"], (
                f"{workload}/{size}: dispatch count diverged from baseline")
            verdict, base_vt = "identical", base["virtual_elapsed"]
        else:
            # Smoke / no baseline: two plan-less runs must agree.
            wall2, dispatches2, vt2 = runner("indexed")
            assert (vt, dispatches) == (vt2, dispatches2)
            verdict, base_vt = "self-id", vt2
        rows.append({"workload": workload, "size": size, "params": params,
                     "virtual_elapsed": vt, "dispatches": dispatches,
                     "wall_s": round(wall, 4), "verdict": verdict})
        report(f"{workload:<16} {size:<6} {vt:>8} {dispatches:>6} "
               f"{base_vt:>9} {verdict:>10}")

    # Wall-clock tripwire on the workload large enough to time reliably.
    wall_row = None
    if compare_baseline:
        base = by_key[("sched_stress", "large")]
        best = min(eng_bench._sizes()[1][2]("indexed")[0] for _ in range(3))
        ratio = best / base["indexed"]["wall_s"]
        wall_row = {"workload": "sched_stress", "size": "large",
                    "wall_s_best_of_3": round(best, 4),
                    "baseline_wall_s": base["indexed"]["wall_s"],
                    "ratio": round(ratio, 3)}
        report(f"\nsched_stress/large wall: {best:.4f}s vs baseline "
               f"{base['indexed']['wall_s']:.4f}s (x{ratio:.3f}, "
               f"limit x{MAX_WALL_REGRESSION})")
        assert ratio <= MAX_WALL_REGRESSION, (
            f"plan-less wall clock regressed x{ratio:.3f} "
            f"(> x{MAX_WALL_REGRESSION}) on sched_stress/large")

    write_bench(make_record(
        "faults_overhead", smoke=SMOKE,
        virtual={f"{r['workload']}/{r['size']}": r["virtual_elapsed"]
                 for r in rows},
        wall_ratios=({"sched_stress/large": wall_row["ratio"]}
                     if wall_row else {}),
        wall_seconds={f"{r['workload']}/{r['size']}": r["wall_s"]
                      for r in rows},
        compared_to_baseline=compare_baseline,
        max_wall_regression=MAX_WALL_REGRESSION,
        workloads=rows, wall_check=wall_row), OUT_PATH)
    report(f"\nwritten: {OUT_PATH.name}")
