"""Ablation A7: parallel file I/O through striped windows (§1, §8).

Section 8 gives windows their secondary-storage role ("a uniform access
method for large arrays on secondary storage"); section 1 announces the
PISCES 3 emphasis on parallel I/O.  This benchmark implements that
direction on the reproduced substrate: a 1 MB file array behind the
file controller, read through windows by 4 concurrent reader tasks,
sweeping the controller's disk array from 1 to 8 disks.

Expected shape: elapsed I/O time scales down with disk count until the
seek overhead floor; per-disk byte counters show the stripe spreading.
"""

import numpy as np
import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.task import TaskRegistry
from repro.core.taskid import PARENT, SAME
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32
from repro.util.tables import format_table

N_READERS = 4
ELEMS = 128 * 1024          # 1 MB of f8
STRIPE = 16 * 1024


def run_case(n_disks: int):
    reg = TaskRegistry()

    @reg.tasktype("READER")
    def reader(ctx, k):
        w = ctx.file_window("DATA")
        part = w.split(N_READERS, axis=0)[k]
        data = ctx.window_read(part)
        ctx.send(PARENT, "DONE", float(data[0]))

    @reg.tasktype("MAIN")
    def main(ctx):
        t0 = ctx.now()
        for k in range(N_READERS):
            ctx.initiate("READER", k, on=SAME)
        ctx.accept("DONE", count=N_READERS)
        return ctx.now() - t0

    cfg = Configuration(clusters=(ClusterSpec(1, 3, N_READERS + 1),),
                        name=f"io-{n_disks}")
    vm = PiscesVM(cfg, registry=reg, machine=nasa_langley_flex32())
    vm.export_file("DATA", np.arange(float(ELEMS)))
    vm.configure_file_disks(n_disks, stripe_unit=STRIPE)
    r = vm.run("MAIN", shutdown=False)
    disks = vm.file_controller.disks
    rows = disks.stats_rows()
    vm.shutdown()
    return r.value, rows


def run_sweep():
    return {n: run_case(n) for n in (1, 2, 4, 8)}


def test_parallel_io(benchmark, report):
    res = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    base = res[1][0]
    rows = [[f"{n} disk(s)", elapsed, f"{base / elapsed:.2f}x"]
            for n, (elapsed, _) in sorted(res.items())]
    report(format_table(
        ["disk array", "I/O elapsed (ticks)", "speedup"],
        rows, title=f"A7: PARALLEL FILE I/O ({ELEMS * 8 // 1024} KB file, "
                    f"{N_READERS} readers, {STRIPE // 1024} KB stripes)"))

    # Per-disk spread for the 4-disk case: all disks participate with
    # comparable byte counts.
    _, disk_rows = res[4]
    report("")
    report(format_table(
        ["disk", "requests", "bytes read", "bytes written", "busy ticks"],
        disk_rows, title="4-DISK STRIPE SPREAD"))
    reads = [r[2] for r in disk_rows]
    assert all(b > 0 for b in reads)
    assert max(reads) < 2 * min(reads)

    # Scaling shape: monotone improvement, >=2x by four disks.
    e1, e2, e4, e8 = (res[n][0] for n in (1, 2, 4, 8))
    assert e1 > e2 > e4 >= e8
    assert e4 < e1 / 2
    report("")
    report(f"4-disk speedup {e1 / e4:.2f}x, 8-disk {e1 / e8:.2f}x "
           f"(seek floor {res[8][1][0][4]} busy ticks/disk)")
