"""Shared schema for the committed ``BENCH_*.json`` perf records.

Every benchmark that writes a ``BENCH_<name>.json`` at the repo root
builds it through :func:`make_record` so the files share one shape::

    {
      "schema_version": 1,
      "benchmark": "<name>",
      "smoke": false,
      "gate": {
        "virtual":      {"<key>": <ticks>, ...},   # must never change
        "wall_ratios":  {"<key>": <ratio>, ...},   # on/off ratios, lower=better
        "wall_seconds": {"<key>": <seconds>, ...}  # absolute walls, informative
      },
      ... benchmark-specific payload ...
    }

The ``gate`` section is what ``benchmarks/compare.py`` reads: the
``virtual`` map is the determinism contract (bit-identical elapsed
virtual ticks -- *any* change fails the gate), ``wall_ratios`` are
machine-independent on/off overhead ratios bounded at +15%%, and
``wall_seconds`` are absolute timings compared with the same bound but
only above a noise floor.  Keeping the gate separate from the payload
lets each benchmark keep its own reporting shape while the comparator
stays generic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

SCHEMA_VERSION = 1

ROOT = Path(__file__).resolve().parent.parent


def bench_path(name: str, root: Optional[Path] = None) -> Path:
    """The canonical location of one benchmark's committed record."""
    return (root or ROOT) / f"BENCH_{name}.json"


def make_record(name: str, *, smoke: bool,
                virtual: Optional[Dict[str, Any]] = None,
                wall_ratios: Optional[Dict[str, Any]] = None,
                wall_seconds: Optional[Dict[str, Any]] = None,
                **payload: Any) -> Dict[str, Any]:
    """Build a schema-conforming record; ``payload`` keys are the
    benchmark's own reporting fields and pass through untouched."""
    record: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "smoke": bool(smoke),
        "gate": {
            "virtual": {k: int(v) for k, v in sorted((virtual or {}).items())},
            "wall_ratios": {k: round(float(v), 4)
                            for k, v in sorted((wall_ratios or {}).items())},
            "wall_seconds": {k: round(float(v), 4)
                             for k, v in sorted((wall_seconds or {}).items())},
        },
    }
    for k, v in payload.items():
        record[k] = v
    return record


def write_bench(record: Dict[str, Any], path: Optional[Path] = None) -> Path:
    """Write one record to its canonical path (or ``path``)."""
    if "benchmark" not in record or "gate" not in record:
        raise ValueError("bench record must come from make_record()")
    out = path or bench_path(record["benchmark"])
    out.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return out


def load_bench(path: Path) -> Dict[str, Any]:
    """Load and sanity-check one record."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "benchmark" not in doc:
        raise ValueError(f"{path}: not a BENCH record")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"{path}: schema_version "
                         f"{doc.get('schema_version')!r} != {SCHEMA_VERSION}")
    gate = doc.get("gate")
    if not isinstance(gate, dict):
        raise ValueError(f"{path}: missing gate section")
    for part in ("virtual", "wall_ratios", "wall_seconds"):
        if not isinstance(gate.get(part), dict):
            raise ValueError(f"{path}: gate.{part} missing or not a map")
    return doc
