"""Ablation A8: multiple grain sizes of parallel operation (section 2).

"The PISCES 2 design attempts to provide several different grain
sizes": clusters in parallel, tasks within a cluster, and force code
segments.  The same C = A x B runs at three grains with identical
per-cell work charges:

* task grain   -- 4 worker tasks across 2 clusters, data via windows;
* segment grain -- one task, a 4-member force over SHARED COMMON;
* hybrid       -- one task per cluster, each splitting into a force.

Expected shape: all three produce the identical matrix; the force is
the cheapest organization at this size (no window traffic, one task
start), tasks pay message/window overhead, and the hybrid sits between
while reaching the most PEs -- which is why the paper offers all three.
"""

import numpy as np
import pytest

from repro.apps.matmul import (
    make_inputs,
    run_matmul_force,
    run_matmul_hybrid,
    run_matmul_tasks,
)
from repro.flex.presets import nasa_langley_flex32
from repro.util.tables import format_table

N = 24


def run_all():
    rt = run_matmul_tasks(n=N, n_workers=4, n_clusters=2,
                          machine=nasa_langley_flex32())
    msgs = rt.vm.stats.messages_sent
    wbytes = rt.vm.stats.window_bytes_read
    rt.vm.shutdown()
    rf = run_matmul_force(n=N, force_pes=3,
                          machine=nasa_langley_flex32())
    rf.vm.shutdown()
    rh = run_matmul_hybrid(n=N, n_clusters=2, force_pes_per_cluster=2,
                           machine=nasa_langley_flex32())
    rh.vm.shutdown()
    return (rt.C, rt.elapsed, msgs, wbytes), (rf.C, rf.elapsed), \
        (rh.C, rh.elapsed)


def test_grain_sizes(benchmark, report):
    (ct, et, msgs, wbytes), (cf, ef), (ch, eh) = benchmark.pedantic(
        run_all, rounds=1, iterations=1)
    A, B = make_inputs(N)
    expect = A @ B
    for c in (ct, cf, ch):
        assert np.allclose(c, expect)

    rows = [
        ["task grain (4 tasks, 2 clusters)", et,
         f"{msgs} msgs, {wbytes} window bytes"],
        ["segment grain (4-member force)", ef, "SHARED COMMON only"],
        ["hybrid (2 tasks x 3-member forces)", eh, "both mechanisms"],
    ]
    report(format_table(
        ["organization", "elapsed (ticks)", "communication"],
        rows, title=f"A8: GRAIN SIZES ({N}x{N} matmul, identical "
                    f"per-cell work)"))

    # Shapes: the force avoids all data movement and wins at this size;
    # the two message-based organizations pay visible overhead but stay
    # within a small factor (they exist for bigger/heterogeneous work).
    assert ef < et and ef < eh
    assert max(et, eh) < 3 * ef
    report("")
    report(f"force organization is {et / ef:.2f}x cheaper than task "
           f"grain and {eh / ef:.2f}x cheaper than hybrid at this size")
