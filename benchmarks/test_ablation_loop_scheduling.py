"""Ablation A1: PRESCHED vs SELFSCHED loop scheduling (section 7e).

The design offers both because neither dominates: prescheduling has no
run-time overhead but fixes the partition; self-scheduling pays a fetch
per iteration but balances skewed iteration costs.  This benchmark
measures both schedulers under uniform and skewed workloads and checks
the expected crossover: PRESCHED wins when iterations are uniform,
SELFSCHED wins under block-skewed cost.
"""

import pytest

from repro.analysis.metrics import load_balance
from repro.config.configuration import ClusterSpec, Configuration
from repro.core.task import TaskRegistry
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32
from repro.util.tables import format_table

N_ITER = 48
FORCE_PES = 3   # force size 4


def cost_uniform(i):
    return 120


def cost_skewed(i):
    # every 4th iteration is heavy: with force size 4, the cyclic
    # preschedule hands ALL heavy iterations to member 0.
    return 600 if i % 4 == 0 else 20


def run_case(sched, costfn):
    reg = TaskRegistry()
    work = {}

    def region(m):
        # Align members first: the primary reaches the loop late (it
        # paid the FORCESPLIT overhead), and without a barrier the
        # self-scheduler silently absorbs that asymmetry too -- a real
        # PISCES effect, but here we isolate the scheduling policy.
        m.barrier()
        it = (m.presched(range(N_ITER)) if sched == "PRESCHED"
              else m.selfsched(range(N_ITER)))
        count = 0
        for i in it:
            m.compute(costfn(i))
            count += 1
        work[m.member] = count

    @reg.tasktype("LOOP")
    def loop(ctx):
        ctx.forcesplit(region)

    cfg = Configuration(clusters=(
        ClusterSpec(1, 3, 2, tuple(range(4, 4 + FORCE_PES))),),
        name=f"loop-{sched}")
    vm = PiscesVM(cfg, registry=reg, machine=nasa_langley_flex32())
    r = vm.run("LOOP")
    return r.elapsed, load_balance(work)


def run_all():
    out = {}
    for workload, costfn in (("uniform", cost_uniform),
                             ("skewed", cost_skewed)):
        for sched in ("PRESCHED", "SELFSCHED"):
            out[(workload, sched)] = run_case(sched, costfn)
    return out


def test_loop_scheduling_ablation(benchmark, report):
    res = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for (workload, sched), (elapsed, imbalance) in sorted(res.items()):
        rows.append([workload, sched, elapsed, f"{imbalance:.2f}"])
    report(format_table(
        ["workload", "scheduler", "elapsed (ticks)", "imbalance (max/mean)"],
        rows, title=f"A1: LOOP SCHEDULING ({N_ITER} iterations, "
                    f"force of {FORCE_PES + 1})"))

    # Shape 1: uniform work -- prescheduling is at least as fast (no
    # per-iteration fetch cost).
    assert res[("uniform", "PRESCHED")][0] <= res[("uniform", "SELFSCHED")][0]
    # Shape 2: skewed work -- self-scheduling wins despite its overhead.
    assert res[("skewed", "SELFSCHED")][0] < res[("skewed", "PRESCHED")][0]
    report("")
    speedup = res[("skewed", "PRESCHED")][0] / res[("skewed", "SELFSCHED")][0]
    report(f"skewed-workload SELFSCHED advantage: {speedup:.2f}x")
