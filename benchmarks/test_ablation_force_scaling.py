"""Ablation A3: force-size scaling (section 7).

"The same program text may be executed without change by a force of any
number of members -- only the performance of the program will change,
not its semantics."  This benchmark runs the identical Jacobi force
program under configurations with 1, 2, 4, and 8 force members and
reports the speedup curve; semantics (the resulting grid) must be
bit-identical across sizes.
"""

import numpy as np
import pytest

from repro.analysis.metrics import ScalingPoint, speedup_table
from repro.apps.jacobi import run_jacobi_force, reference_solution
from repro.flex.presets import nasa_langley_flex32
from repro.util.tables import format_table

N = 32
SWEEPS = 3
SIZES = (1, 2, 4, 8)      # force members (1 + secondary PEs)


def run_curve():
    points = []
    grids = []
    for size in SIZES:
        r = run_jacobi_force(n=N, sweeps=SWEEPS, force_pes=size - 1,
                             machine=nasa_langley_flex32())
        r.vm.shutdown()
        points.append(ScalingPoint(f"force-{size}", size, r.elapsed))
        grids.append(r.grid)
    return points, grids


def test_force_scaling(benchmark, report):
    points, grids = benchmark.pedantic(run_curve, rounds=1, iterations=1)
    report(f"A3: FORCE SCALING (Jacobi {N}x{N}, {SWEEPS} sweeps; same "
           f"program text, force size set by configuration only)")
    report(speedup_table(points))

    # Semantics identical for every force size (and correct).
    ref = reference_solution(N, SWEEPS)
    for g in grids:
        assert np.array_equal(g, grids[0])
        assert np.allclose(g, ref)

    # Shape: monotone speedup, and meaningful parallel efficiency at 4.
    elapsed = [p.elapsed for p in points]
    assert elapsed[0] > elapsed[1] > elapsed[2] >= elapsed[3] * 0.9
    speedup4 = elapsed[0] / elapsed[2]
    assert speedup4 > 2.0, f"4-member force speedup only {speedup4:.2f}x"
    report("")
    report(f"4-member speedup {speedup4:.2f}x over the same text at size 1")
