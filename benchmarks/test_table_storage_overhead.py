"""Section 13 storage measurements (the paper's quantitative results).

Paper's claims:
  S1. "the PISCES 2 system uses less than 2.5% of each PE's local
      memory (for system code and data)";
  S2. "and less than 0.3% of shared memory (for system tables)";
  S3. "Storage used for message passing is dynamically recovered and
      reused.  Thus the amount of shared memory used for message
      passing only becomes significant when large numbers of messages
      (or very large messages) are sent and left waiting in a task's
      in-queue without being accepted."

Each is measured off a live VM on the 20-PE NASA machine model.
"""

import numpy as np
import pytest

from repro.analysis.storage import (
    PAPER_LOCAL_BOUND,
    PAPER_SHARED_TABLE_BOUND,
    measure,
    storage_table,
)
from repro.config.configuration import ClusterSpec, Configuration
from repro.core.task import TaskRegistry
from repro.core.taskid import SELF
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32

from _paperconfig import section9_configuration


def sweep_configurations():
    """Configurations from minimal to the 18-cluster maximum."""
    out = [Configuration(clusters=(ClusterSpec(1, 3, 4),), name="1x4"),
           section9_configuration()]
    specs = tuple(ClusterSpec(i, 2 + i, 2) for i in range(1, 9))
    out.append(Configuration(clusters=specs, name="8x2"))
    specs18 = tuple(ClusterSpec(i, 2 + i, 1) for i in range(1, 19))
    out.append(Configuration(clusters=specs18, name="18x1 (max clusters)"))
    return out


def measure_all():
    ms = []
    for cfg in sweep_configurations():
        vm = PiscesVM(cfg, registry=TaskRegistry(),
                      machine=nasa_langley_flex32())
        ms.append(measure(vm))
        vm.shutdown()
    return ms


def test_local_and_shared_overhead(benchmark, report):
    """S1 + S2: the storage-overhead table across configurations."""
    ms = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    report(storage_table(ms))
    report("")
    report(f"paper: local system < {100 * PAPER_LOCAL_BOUND}%  |  "
           f"shared tables < {100 * PAPER_SHARED_TABLE_BOUND}%")
    # S1 holds for every configuration (same loadfile everywhere).
    assert all(m.meets_local_bound for m in ms)
    # S2 holds for the paper's own example configuration (and indeed up
    # to 8 clusters); the degenerate 18-cluster maximum is reported too.
    section9 = [m for m in ms if m.config_name == "section9-example"][0]
    assert section9.meets_shared_bound
    small = [m for m in ms if m.config_name == "1x4"][0]
    assert small.meets_shared_bound


def run_message_recovery():
    reg = TaskRegistry()
    probe = {}

    @reg.tasktype("MAIN")
    def main(ctx):
        heap = ctx.vm.machine.shared
        probe["baseline"] = heap.live_bytes_by_tag().get("message", 0)
        # Phase 1: heavy send/accept traffic -- storage is recovered.
        for round_ in range(50):
            for i in range(10):
                ctx.send(SELF, "PKT", np.zeros(32), i)
            ctx.accept(("PKT", 10))
        probe["after_traffic"] = heap.live_bytes_by_tag().get("message", 0)
        probe["high_water"] = heap.stats.high_water
        # Phase 2: the warned failure mode -- unaccepted pile-up.
        for i in range(200):
            ctx.send(SELF, "PILE", np.zeros(64))
        probe["piled"] = heap.live_bytes_by_tag().get("message", 0)
        from repro.core.accept import ALL_RECEIVED
        ctx.accept(("PILE", ALL_RECEIVED))
        probe["drained"] = heap.live_bytes_by_tag().get("message", 0)

    vm = PiscesVM(Configuration(clusters=(ClusterSpec(1, 3, 4),),
                                name="msg"),
                  registry=reg, machine=nasa_langley_flex32())
    vm.run("MAIN")
    return probe


def test_message_storage_recovery(benchmark, report):
    """S3: message heap returns to baseline after accepts; only
    unaccepted queues grow it."""
    p = benchmark.pedantic(run_message_recovery, rounds=1, iterations=1)
    report("SECTION 13 S3: message-passing storage (bytes)")
    report(f"  baseline live message bytes .......... {p['baseline']}")
    report(f"  after 500 sends all accepted ......... {p['after_traffic']}")
    report(f"  heap high-water during traffic ....... {p['high_water']}")
    report(f"  after 200 sends left unaccepted ...... {p['piled']}")
    report(f"  after draining the in-queue .......... {p['drained']}")
    # Recovered and reused:
    assert p["after_traffic"] == p["baseline"] == 0
    # Only significant when messages pile up unaccepted:
    assert p["piled"] > 200 * 64
    assert p["drained"] == 0
    # Traffic peaked well below the pile-up (queue depth 10 vs 200).
    assert p["high_water"] < p["piled"] + 10_000
