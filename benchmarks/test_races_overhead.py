"""Correctness-subsystem overhead: detection and recording are free in
virtual time, cheap in wall time at the paper's grain.

Four measured modes per workload:

* **baseline** -- plain run, no correctness instrumentation;
* **detect**   -- happens-before race detection on (and the shipped
  apps must report *zero* races);
* **record**   -- schedule recording into a ``.psched`` stream;
* **replay**   -- re-execution of that recording.

The virtual-time contract is exact and unconditional: all four modes
produce the *same* elapsed ticks and dispatch count, asserted on every
workload.  The wall-clock contract is asserted on the ``large-grain``
workload, whose members do real numpy work per scheduling event --
PISCES targets large-grain parallelism (section 2), and per-access
detector cost (vector clocks + extent tracking, tens of microseconds)
is only meaningful relative to the grain it instruments.  The
access-dense micro workloads would time the detector against a baseline
that does *no* real work per access (virtual compute charges no wall
time); their ratios are reported in the JSON but not bounded.

``RACES_BENCH_SMOKE=1`` shrinks sizes and skips the wall-clock
assertion (timing a sub-100ms run is noise).  Writes
``BENCH_races_overhead.json``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from _bench_schema import make_record, write_bench

from repro import check_races, record_run, replay_run, run_app
from repro.apps.jacobi import build_force_registry, build_windows_registry
from repro.apps.matmul import build_tasks_registry
from repro.core.task import TaskRegistry

SMOKE = bool(os.environ.get("RACES_BENCH_SMOKE"))
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_races_overhead.json"

#: Allowed detection-on wall-clock overhead at large grain.
MAX_WALL_OVERHEAD = 1.15

N = 12 if SMOKE else 24
SWEEPS = 2 if SMOKE else 4
GRAIN_N = 96 if SMOKE else 384
GRAIN_SWEEPS = 2 if SMOKE else 4

REPS = 1 if SMOKE else 3


def build_grain_registry(n: int, sweeps: int) -> TaskRegistry:
    """Large-grain force: each member's iteration is one real ``n x n``
    matrix product bracketed by one tracked SHARED COMMON read and one
    tracked write -- the grain the paper's forces are designed for."""
    reg = TaskRegistry()

    def region(m):
        blk = m.common("G")
        for s in range(sweeps):
            for i in m.presched(4):
                block = np.asarray(blk.a[:])         # tracked read
                r = block @ block.T                  # the real work
                blk.out[i] = float(r[0, 0])          # tracked write
                m.compute(n * n)
            m.barrier()

    @reg.tasktype("GRAIN", shared={"G": {"a": ("f8", (n, n)),
                                         "out": ("f8", (4,))}})
    def grain(ctx):
        blk = ctx.common("G")
        blk.a[...] = np.linspace(0.0, 1.0, n * n).reshape(n, n)
        ctx.forcesplit(region)
        return float(np.asarray(blk.out[:]).sum())

    return reg


#: (name, tasktype, args, registry builder, vm kwargs, wall-bounded?)
WORKLOADS = [
    ("large-grain", "GRAIN", (),
     lambda: build_grain_registry(GRAIN_N, GRAIN_SWEEPS),
     dict(n_clusters=1, force_pes_per_cluster=3), True),
    ("jacobi-force", "JFORCE", (N, SWEEPS),
     lambda: build_force_registry(N, SWEEPS),
     dict(n_clusters=1, force_pes_per_cluster=3), False),
    ("jacobi-windows", "JMASTER", (),
     lambda: build_windows_registry(N, SWEEPS, 3), {}, False),
    ("matmul-tasks", "MMASTER", (),
     lambda: build_tasks_registry(N, 3), {}, False),
]


def _timed(fn):
    best = None
    out = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        out = fn()
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    return best, out


def test_detection_and_recording_charge_no_virtual_time(report):
    rows = []
    virtual = {}
    ratios = {}
    walls = {}
    report("correctness-subsystem overhead: virtual time identical on "
           "every workload;")
    report(f"detect wall < x{MAX_WALL_OVERHEAD} at large grain "
           f"(best of {REPS})")
    header = (f"{'workload':<16} {'vtime':>9} {'disp':>6} {'base_s':>8} "
              f"{'detect_s':>9} {'ratio':>6} {'wall bound':>11}")
    report(header)
    report("-" * len(header))

    for name, ttype, args, build, kw, bounded in WORKLOADS:
        base_wall, base = _timed(
            lambda: run_app(ttype, *args, registry=build(), **kw))
        fp = (int(base.elapsed), int(base.vm.engine.dispatch_count))

        det_wall, chk = _timed(
            lambda: check_races(ttype, *args, registry=build(), **kw))
        assert chk.clean, (
            f"{name}: shipped app reported races: {chk.report_text()}")
        assert (chk.result.elapsed,
                chk.result.vm.engine.dispatch_count) == fp, (
            f"{name}: detection perturbed the virtual history")

        rec_wall, rec = _timed(
            lambda: record_run(ttype, *args, registry=build(),
                               trace=False, **kw))
        assert (rec.elapsed, rec.result.vm.engine.dispatch_count) == fp, (
            f"{name}: recording perturbed the virtual history")

        rep_wall, rep = _timed(
            lambda: replay_run(ttype, *args, schedule=rec.schedule,
                               registry=build(), trace=False, **kw))
        assert (rep.elapsed, rep.vm.engine.dispatch_count) == fp, (
            f"{name}: replay diverged from the recorded history")

        ratio = det_wall / base_wall
        virtual[name] = fp[0]
        walls[name] = base_wall
        if bounded:
            ratios[name] = ratio
        rows.append({
            "workload": name, "virtual_elapsed": fp[0], "dispatches": fp[1],
            "wall_s": {"baseline": round(base_wall, 4),
                       "detect": round(det_wall, 4),
                       "record": round(rec_wall, 4),
                       "replay": round(rep_wall, 4)},
            "detect_ratio": round(ratio, 3),
            "wall_bounded": bounded,
            "accesses_checked": chk.detector.accesses_checked,
            "races": len(chk.reports),
        })
        bound = f"x{MAX_WALL_OVERHEAD}" if bounded else "reported"
        report(f"{name:<16} {fp[0]:>9} {fp[1]:>6} {base_wall:>8.4f} "
               f"{det_wall:>9.4f} {ratio:>6.3f} {bound:>11}")
        if bounded and not SMOKE:
            assert ratio <= MAX_WALL_OVERHEAD, (
                f"{name}: detection wall overhead x{ratio:.3f} "
                f"(> x{MAX_WALL_OVERHEAD})")

    write_bench(make_record(
        "races_overhead", smoke=SMOKE,
        virtual=virtual, wall_ratios=ratios, wall_seconds=walls,
        max_wall_overhead=MAX_WALL_OVERHEAD,
        wall_checked=not SMOKE, reps=REPS, workloads=rows), OUT_PATH)
    report(f"\nwritten: {OUT_PATH.name}")
