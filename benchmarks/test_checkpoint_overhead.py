"""Checkpointing overhead: zero virtual time, bounded wall time.

The periodic checkpointer (``engine._ckpt_pump``, see
:mod:`repro.checkpoint.policy`) runs between dispatches and serializes
the VM through the same digest pipeline restore-validation uses.  It
must be a pure observer; this benchmark proves the contract per
workload:

* **virtual identity** -- elapsed ticks, dispatch count *and the full
  trace-event stream* are bit-identical with periodic checkpointing on
  and off, on every workload, unconditionally;
* **wall clock** -- checkpointing-on wall time is bounded at x1.15 on
  the ``large-grain`` workload, whose members do real numpy work per
  scheduling event (the grain PISCES targets; the access-dense micro
  workloads time bundle serialization against zero-wall virtual
  compute and are reported, not bounded).

Sizes are FIXED (no smoke shrink): the committed
``BENCH_checkpoint_overhead.json`` gate carries the virtual-tick
fingerprints, and CI regenerates and compares them with
``benchmarks/compare.py``.  ``CKPT_BENCH_SMOKE=1`` only drops the
timing repetitions and skips the wall-clock assertion.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from _bench_schema import make_record, write_bench
from test_races_overhead import build_grain_registry

from repro.api import make_vm
from repro.apps.jacobi import build_windows_registry
from repro.apps.matmul import build_tasks_registry
from repro.checkpoint import find_latest_checkpoint, load_bundle
from repro.config.configuration import simple_configuration

SMOKE = bool(os.environ.get("CKPT_BENCH_SMOKE"))
OUT_PATH = (Path(__file__).resolve().parent.parent
            / "BENCH_checkpoint_overhead.json")

#: Allowed checkpointing-on wall-clock overhead at large grain.
MAX_WALL_OVERHEAD = 1.15

REPS = 1 if SMOKE else 3

#: Fixed sizes -- the gate fingerprints depend on them.
N, SWEEPS = 16, 2
GRAIN_N, GRAIN_SWEEPS = 512, 2

TRACE = ("TASK_INIT", "MSG_SEND", "MSG_ACCEPT", "TASK_TERM")

#: (name, tasktype, args, registry builder, shape kwargs,
#:  checkpoint interval in virtual ticks, wall-bounded?)
WORKLOADS = [
    ("large-grain", "GRAIN", (),
     lambda: build_grain_registry(GRAIN_N, GRAIN_SWEEPS),
     dict(n_clusters=1, force_pes_per_cluster=3), 80_000, True),
    ("jacobi-windows", "JMASTER", (),
     lambda: build_windows_registry(N, SWEEPS, 3), {}, 500, False),
    ("matmul-tasks", "MMASTER", (),
     lambda: build_tasks_registry(N, 3), {}, 500, False),
]


def _run(ttype, args, build, shape, every, ckpt_dir):
    cfg = replace(
        simple_configuration(name="ckpt-bench", **shape),
        trace_events=TRACE,
        checkpoint_every=(every if ckpt_dir else 0),
        checkpoint_dir=str(ckpt_dir) if ckpt_dir else "",
        checkpoint_keep=2)
    vm = make_vm(config=cfg, registry=build())
    t0 = time.perf_counter()
    r = vm.run(ttype, *args)
    wall = time.perf_counter() - t0
    trace = [e.line() for e in vm.tracer.events]
    return wall, r, trace, vm.engine.dispatch_count


def _timed(fn):
    best = out = None
    for _ in range(REPS):
        wall, *rest = fn()
        out = rest
        best = wall if best is None else min(best, wall)
    return best, out


def test_checkpointing_charges_no_virtual_time(report):
    rows = []
    virtual = {}
    ratios = {}
    walls = {}
    report("checkpoint overhead: virtual time and trace stream identical "
           "on every workload;")
    report(f"checkpoint-on wall < x{MAX_WALL_OVERHEAD} at large grain "
           f"(best of {REPS})")
    header = (f"{'workload':<16} {'vtime':>8} {'disp':>6} {'ckpts':>6} "
              f"{'bytes':>8} {'off_s':>8} {'on_s':>8} {'ratio':>6} "
              f"{'wall bound':>11}")
    report(header)
    report("-" * len(header))

    for name, ttype, args, build, shape, every, bounded in WORKLOADS:
        off_wall, (off, off_trace, off_disp) = _timed(
            lambda: _run(ttype, args, build, shape, every, None))

        with tempfile.TemporaryDirectory() as d:
            on_wall, (on, on_trace, on_disp) = _timed(
                lambda: _run(ttype, args, build, shape, every, d))
            latest = find_latest_checkpoint(d)
            assert latest is not None, f"{name}: no bundle written"
            manifest, state, _ = load_bundle(latest)
            assert state["now"] == manifest["now"]

        assert on.elapsed == off.elapsed, (
            f"{name}: checkpointing perturbed virtual time "
            f"{off.elapsed} -> {on.elapsed}")
        assert on_disp == off_disp, (
            f"{name}: checkpointing perturbed the dispatch count")
        assert on_trace == off_trace, (
            f"{name}: checkpointing perturbed the trace stream")
        assert on.stats.checkpoints_written > 0

        ratio = on_wall / off_wall
        virtual[name] = int(off.elapsed)
        walls[name] = off_wall
        if bounded:
            ratios[name] = ratio
        rows.append({
            "workload": name, "virtual_elapsed": int(off.elapsed),
            "dispatches": off_disp, "checkpoint_every": every,
            "checkpoints_written": on.stats.checkpoints_written,
            "checkpoint_bytes": on.stats.checkpoint_bytes,
            "wall_s": {"off": round(off_wall, 4), "on": round(on_wall, 4)},
            "ratio": round(ratio, 3), "wall_bounded": bounded,
        })
        bound = f"x{MAX_WALL_OVERHEAD}" if bounded else "reported"
        report(f"{name:<16} {off.elapsed:>8} {off_disp:>6} "
               f"{on.stats.checkpoints_written:>6} "
               f"{on.stats.checkpoint_bytes:>8} {off_wall:>8.4f} "
               f"{on_wall:>8.4f} {ratio:>6.3f} {bound:>11}")
        if bounded and not SMOKE:
            assert ratio <= MAX_WALL_OVERHEAD, (
                f"{name}: checkpointing wall overhead x{ratio:.3f} "
                f"(> x{MAX_WALL_OVERHEAD})")

    write_bench(make_record(
        "checkpoint_overhead", smoke=SMOKE,
        virtual=virtual, wall_ratios=ratios, wall_seconds=walls,
        max_wall_overhead=MAX_WALL_OVERHEAD,
        wall_checked=not SMOKE, reps=REPS, workloads=rows), OUT_PATH)
    report(f"\nwritten: {OUT_PATH.name}")
