"""Ablation A2: windows vs eager data shipping (section 8).

"In such a setting, it is undesirable to have the array elements
actually flow into and out of the partitioning tasks, because no
processing is done in these tasks. ... The array values only need be
transmitted once, to the task assigned the actual processing of the
data."

Both variants run the same two-level partitioning tree (owner ->
partitioner -> 4 leaves) over an NxN array:

* WINDOWS: the partitioner receives one window (32 bytes), shrinks it
  four ways, forwards windows; leaves window-read their block.
* EAGER: the owner sends the whole array to the partitioner, which
  slices it and re-sends the pieces -- bytes flow through the middle.

Measured: total array bytes moved, and the partitioning task's share.

The data-plane half of the ablation (``test_jacobi_tree_dataplane``,
``test_matmul_tree_dataplane``) runs the same partitioning-tree shapes
for many sweeps/rounds under the three window data-plane paths
(``reference`` / ``batched`` / ``fast``) plus an eager-shipping
variant, and writes ``BENCH_windows_dataplane.json`` at the repo root:

* bytes forwarded *through* the partitioning task: eager vs windows
  (the paper's claim -- must be at least 2x lower with windows);
* host wall-clock: cached fast path vs the per-row reference path
  (must be at least 30% faster on the Jacobi tree);
* determinism: all three paths must agree bit-identically in virtual
  time (elapsed ticks and the full trace-event stream) -- the
  reference path is the oracle, exactly like PR 2's scan dispatcher.

``WINDOWS_BENCH_SMOKE=1`` shrinks the workloads and relaxes the
wall-clock assertion (CI smoke boxes have noisy clocks).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.task import TaskRegistry
from repro.core.taskid import PARENT, SAME
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32
from repro.util.tables import format_table

N = 32          # array is N x N float64 = 8192 bytes
LEAVES = 4

SMOKE = bool(os.environ.get("WINDOWS_BENCH_SMOKE"))
BENCH_PATH = (Path(__file__).resolve().parent.parent
              / "BENCH_windows_dataplane.json")

# Jacobi-tree workload (the data-plane stressor): every leaf re-reads
# its G halo block and its (read-only) K coefficient block each sweep.
JN = 64 if SMOKE else 256
JSWEEPS = 3 if SMOKE else 8
JLEAVES = 4
# Matmul-tree workload: leaves re-read A-block and all of B each round.
MN = 32 if SMOKE else 96
MROUNDS = 2 if SMOKE else 4
MLEAVES = 4

#: Required margins (relaxed under smoke).
MIN_THROUGH_REDUCTION = 2.0
MIN_CACHED_WALL_WIN = 0.0 if SMOKE else 0.30

TRACE = ("TASK_INIT", "TASK_TERM", "MSG_SEND", "MSG_ACCEPT")


def run_windows():
    reg = TaskRegistry()

    @reg.tasktype("LEAF")
    def leaf(ctx, k):
        ctx.send(PARENT, "HELLO", k)
        w = ctx.accept("WIN").args[0]
        block = ctx.window_read(w)
        ctx.send(PARENT, "SUM", float(block.sum()))

    @reg.tasktype("PARTITIONER")
    def partitioner(ctx):
        w = ctx.accept("WIN").args[0]
        parts = w.split(LEAVES, axis=0)
        for k in range(LEAVES):
            ctx.initiate("LEAF", k, on=SAME)
        who = {}
        for _ in range(LEAVES):
            r = ctx.accept("HELLO")
            who[r.args[0]] = r.sender
        for k in range(LEAVES):
            ctx.send(who[k], "WIN", parts[k])
        total = sum(ctx.accept("SUM").args[0] for _ in range(LEAVES))
        ctx.send(PARENT, "TOTAL", total)

    @reg.tasktype("OWNER")
    def owner(ctx):
        a = np.arange(float(N * N)).reshape(N, N)
        ctx.export_array("A", a)
        ctx.initiate("PARTITIONER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)   # let it start
        ctx.broadcast("WIN", ctx.window("A"), cluster=1)
        return ctx.accept("TOTAL").args[0]

    cfg = Configuration(clusters=(ClusterSpec(1, 3, 8),), name="win")
    vm = PiscesVM(cfg, registry=reg, machine=nasa_langley_flex32())
    r = vm.run("OWNER")
    array_bytes_moved = r.stats.window_bytes_read + r.stats.window_bytes_written
    return r.value, array_bytes_moved, 0, r.elapsed


def run_eager():
    reg = TaskRegistry()
    through_partitioner = {"bytes": 0}

    @reg.tasktype("LEAF")
    def leaf(ctx, k):
        ctx.send(PARENT, "HELLO", k)
        block = ctx.accept("DATA").args[0]
        ctx.send(PARENT, "SUM", float(block.sum()))

    @reg.tasktype("PARTITIONER")
    def partitioner(ctx):
        a = ctx.accept("DATA").args[0]          # whole array flows IN
        through_partitioner["bytes"] += a.nbytes
        blocks = np.array_split(a, LEAVES, axis=0)
        for k in range(LEAVES):
            ctx.initiate("LEAF", k, on=SAME)
        who = {}
        for _ in range(LEAVES):
            r = ctx.accept("HELLO")
            who[r.args[0]] = r.sender
        for k in range(LEAVES):
            ctx.send(who[k], "DATA", blocks[k])  # ... and OUT again
            through_partitioner["bytes"] += blocks[k].nbytes
        total = sum(ctx.accept("SUM").args[0] for _ in range(LEAVES))
        ctx.send(PARENT, "TOTAL", total)

    @reg.tasktype("OWNER")
    def owner(ctx):
        a = np.arange(float(N * N)).reshape(N, N)
        ctx.initiate("PARTITIONER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        ctx.broadcast("DATA", a, cluster=1)
        return ctx.accept("TOTAL").args[0]

    cfg = Configuration(clusters=(ClusterSpec(1, 3, 8),), name="eager")
    vm = PiscesVM(cfg, registry=reg, machine=nasa_langley_flex32())
    r = vm.run("OWNER")
    # array payload bytes: owner->partitioner + partitioner->leaves
    array_bytes_moved = N * N * 8 * 2
    return (r.value, array_bytes_moved,
            through_partitioner["bytes"], r.elapsed)


def test_windows_vs_eager(benchmark, report):
    results = benchmark.pedantic(
        lambda: (run_windows(), run_eager()), rounds=1, iterations=1)
    (w_total, w_moved, w_through, w_elapsed) = results[0]
    (e_total, e_moved, e_through, e_elapsed) = results[1]
    expect = float(np.arange(float(N * N)).sum())
    assert w_total == e_total == expect   # same answer both ways

    array_bytes = N * N * 8
    rows = [
        ["windows", w_moved, w_through, w_elapsed],
        ["eager", e_moved, e_through, e_elapsed],
    ]
    report(format_table(
        ["variant", "array bytes moved", "bytes through partitioner",
         "elapsed"],
        rows, title=f"A2: WINDOWS vs EAGER ({N}x{N} f8 array = "
                    f"{array_bytes} bytes, {LEAVES} leaves)"))

    # The paper's claim, quantified:
    assert w_moved == array_bytes          # moved exactly once
    assert w_through == 0                  # nothing flows through the middle
    assert e_moved == 2 * array_bytes      # in and out again
    assert e_through == 2 * array_bytes
    report("")
    report(f"windows move the array exactly once ({w_moved} bytes); "
           f"eager shipping moves it {e_moved // array_bytes}x")


# ------------------------------------------------------- data plane --

def _tree_config(name, path, traced=False):
    return Configuration(
        clusters=(ClusterSpec(1, 3, 8),), name=name, window_path=path,
        trace_events=TRACE if traced else ())


def build_jacobi_tree(n, leaves, sweeps):
    """Owner -> partitioner -> leaves, windows style: leaves re-read
    their G halo block and read-only K block every sweep."""
    reg = TaskRegistry()

    @reg.tasktype("LEAF")
    def leaf(ctx, k):
        ctx.send(PARENT, "HELLO", k)
        m = ctx.accept("WIN")
        wg, wk = m.args
        for _ in range(sweeps):
            g = ctx.window_read(wg)
            c = ctx.window_read(wk)
            rows = g.shape[0]
            new = g.copy()
            new[1:-1, 1:-1] = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1]
                                      + g[1:-1, :-2] + g[1:-1, 2:])
            new[1:-1, 1:-1] *= c[1:-1, 1:-1]
            ctx.compute((rows - 2) * (n - 2))
            ctx.window_write(wg.shrink(rows=(1, rows - 1)), new[1:-1])
            ctx.send(PARENT, "SWEPT", k)
            ctx.accept("GO", delay=10 ** 9)
        ctx.send(PARENT, "DONE", k)

    @reg.tasktype("PART")
    def part(ctx):
        m = ctx.accept("WIN")
        wg, wk = m.args
        cuts = np.array_split(np.arange(1, n - 1), leaves)
        for k in range(leaves):
            ctx.initiate("LEAF", k, on=SAME)
        who = {}
        for _ in range(leaves):
            r = ctx.accept("HELLO")
            who[r.args[0]] = r.sender
        for k, rows in enumerate(cuts):
            lo, hi = rows[0] - 1, rows[-1] + 2
            ctx.send(who[k], "WIN",
                     wg.shrink(rows=(lo, hi)), wk.shrink(rows=(lo, hi)))
        for _ in range(sweeps):
            ctx.accept("SWEPT", count=leaves, delay=10 ** 9)
            for k in range(leaves):
                ctx.send(who[k], "GO")
        ctx.accept("DONE", count=leaves, delay=10 ** 9)
        ctx.send(PARENT, "TOTAL", 1.0)

    @reg.tasktype("OWNER")
    def owner(ctx):
        g = np.zeros((n, n))
        g[0, :] = g[-1, :] = g[:, 0] = g[:, -1] = 100.0
        kk = np.ones((n, n))
        ctx.export_array("G", g)
        ctx.export_array("K", kk)
        ctx.initiate("PART", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        ctx.broadcast("WIN", ctx.window("G"), ctx.window("K"), cluster=1)
        ctx.accept("TOTAL", delay=10 ** 9)
        return float(g.sum())

    return reg


def build_jacobi_eager(n, leaves, sweeps, through):
    """The same tree, eager style: G and K blocks flow through the
    partitioner every sweep, updated interiors flow back through it."""
    reg = TaskRegistry()

    @reg.tasktype("LEAF")
    def leaf(ctx, k):
        ctx.send(PARENT, "HELLO", k)
        for _ in range(sweeps):
            m = ctx.accept("BLOCK", delay=10 ** 9)
            g, c = m.args
            rows = g.shape[0]
            new = g.copy()
            new[1:-1, 1:-1] = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1]
                                      + g[1:-1, :-2] + g[1:-1, 2:])
            new[1:-1, 1:-1] *= c[1:-1, 1:-1]
            ctx.compute((rows - 2) * (n - 2))
            ctx.send(PARENT, "SWEPT", k, new[1:-1])
        ctx.send(PARENT, "DONE", k)

    @reg.tasktype("PART")
    def part(ctx):
        m = ctx.accept("DATA")
        g, kk = m.args
        through["bytes"] += g.nbytes + kk.nbytes
        cuts = np.array_split(np.arange(1, n - 1), leaves)
        for k in range(leaves):
            ctx.initiate("LEAF", k, on=SAME)
        who = {}
        for _ in range(leaves):
            r = ctx.accept("HELLO")
            who[r.args[0]] = r.sender
        spans = [(rows[0] - 1, rows[-1] + 2) for rows in cuts]
        for _ in range(sweeps):
            for k, (lo, hi) in enumerate(spans):
                gb, cb = g[lo:hi], kk[lo:hi]
                through["bytes"] += gb.nbytes + cb.nbytes
                ctx.send(who[k], "BLOCK", gb, cb)
            res = ctx.accept("SWEPT", count=leaves, delay=10 ** 9)
            for msg in res.messages:
                k, interior = msg.args
                lo, hi = spans[k]
                through["bytes"] += interior.nbytes
                g[lo + 1:hi - 1] = interior
        ctx.accept("DONE", count=leaves, delay=10 ** 9)
        ctx.send(PARENT, "TOTAL", g)

    @reg.tasktype("OWNER")
    def owner(ctx):
        g = np.zeros((n, n))
        g[0, :] = g[-1, :] = g[:, 0] = g[:, -1] = 100.0
        kk = np.ones((n, n))
        ctx.initiate("PART", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        ctx.broadcast("DATA", g, kk, cluster=1)
        final = ctx.accept("TOTAL").args[0]
        return float(final.sum())

    return reg


def build_matmul_tree(n, leaves, rounds):
    """C = A @ B by row blocks of A; every leaf re-reads its A block
    and ALL of B each round (B never changes -> pure cache-hit upside)."""
    reg = TaskRegistry()

    @reg.tasktype("MLEAF")
    def mleaf(ctx, k):
        ctx.send(PARENT, "HELLO", k)
        m = ctx.accept("WIN")
        wa, wb = m.args
        acc = None
        for _ in range(rounds):
            a = ctx.window_read(wa)
            b = ctx.window_read(wb)
            c = a @ b
            ctx.compute(a.shape[0] * n * n)
            acc = c if acc is None else acc + c
        ctx.send(PARENT, "BLOCKC", k, acc)

    @reg.tasktype("MPART")
    def mpart(ctx):
        m = ctx.accept("WIN")
        wa, wb = m.args
        parts = wa.split(leaves, axis=0)
        for k in range(leaves):
            ctx.initiate("MLEAF", k, on=SAME)
        who = {}
        for _ in range(leaves):
            r = ctx.accept("HELLO")
            who[r.args[0]] = r.sender
        for k in range(leaves):
            ctx.send(who[k], "WIN", parts[k], wb)
        res = ctx.accept("BLOCKC", count=leaves, delay=10 ** 9)
        blocks = dict((msg.args[0], msg.args[1]) for msg in res.messages)
        c = np.vstack([blocks[k] for k in range(leaves)])
        ctx.send(PARENT, "RESULT", c)

    @reg.tasktype("MOWNER")
    def mowner(ctx):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        ctx.export_array("A", a)
        ctx.export_array("B", b)
        ctx.initiate("MPART", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        ctx.broadcast("WIN", ctx.window("A"), ctx.window("B"), cluster=1)
        c = ctx.accept("RESULT", delay=10 ** 9).args[0]
        expect = sum((a @ b) for _ in range(rounds))
        assert np.allclose(c, expect)
        return float(np.abs(c).sum())

    return reg


def _run_tree(build, args, path, root="OWNER", traced=False):
    vm = PiscesVM(_tree_config(f"tree-{path}", path, traced=traced),
                  registry=build(*args), machine=nasa_langley_flex32())
    t0 = time.perf_counter()
    r = vm.run(root)
    wall = time.perf_counter() - t0
    trace = [e.line() for e in vm.tracer.events] if traced else None
    return r, wall, trace


def _path_record(r, wall):
    st = r.stats
    return {
        "wall_ms": round(wall * 1000, 2),
        "elapsed_ticks": int(r.elapsed),
        "bytes_requested": int(st.window_bytes_read
                               + st.window_bytes_written),
        "bytes_moved": int(st.window_bytes_moved),
        "txns": int(st.window_txns),
        "cache_hits": int(st.window_cache_hits),
        "cache_misses": int(st.window_cache_misses),
        "value": float(r.value),
    }


def _merge_bench(key, doc_part):
    """Merge one section into BENCH_windows_dataplane.json (two tests
    contribute; either may run alone), rebuilding the shared gate
    section (see _bench_schema) from every section present."""
    from _bench_schema import make_record, write_bench

    sections = {}
    if BENCH_PATH.exists():
        try:
            old = json.loads(BENCH_PATH.read_text())
            sections = {k: v for k, v in old.items()
                        if isinstance(v, dict) and "paths" in v}
        except ValueError:
            sections = {}
    sections[key] = doc_part
    virtual = {}
    ratios = {}
    walls = {}
    for name, part in sorted(sections.items()):
        paths = part["paths"]
        ref_wall = paths.get("reference", {}).get("wall_ms", 0)
        for path, rec in sorted(paths.items()):
            virtual[f"{name}/{path}"] = rec["elapsed_ticks"]
            walls[f"{name}/{path}"] = rec["wall_ms"] / 1000.0
            if path != "reference" and ref_wall:
                # Lower is better: the optimized path's share of the
                # reference data-plane's wall time.
                ratios[f"{name}/{path}"] = rec["wall_ms"] / ref_wall
    write_bench(make_record(
        "windows_dataplane", smoke=SMOKE,
        virtual=virtual, wall_ratios=ratios, wall_seconds=walls,
        **sections), BENCH_PATH)


def test_jacobi_tree_dataplane(report):
    args = (JN, JLEAVES, JSWEEPS)
    results = {}
    traces = {}
    for path in ("reference", "batched", "fast"):
        r, wall, trace = _run_tree(build_jacobi_tree, args, path,
                                   traced=True)
        results[path] = _path_record(r, wall)
        traces[path] = trace

    through = {"bytes": 0}
    vm = PiscesVM(_tree_config("tree-eager", "fast"),
                  registry=build_jacobi_eager(*args, through),
                  machine=nasa_langley_flex32())
    t0 = time.perf_counter()
    re_ = vm.run("OWNER")
    eager_wall = time.perf_counter() - t0
    eager = {"wall_ms": round(eager_wall * 1000, 2),
             "elapsed_ticks": int(re_.elapsed),
             "through_partitioner_bytes": int(through["bytes"]),
             "value": float(re_.value)}

    # Same physics both styles.
    assert results["fast"]["value"] == pytest.approx(eager["value"])

    # Determinism: the fast and batched paths must be bit-identical to
    # the per-row reference oracle in virtual time AND trace stream.
    for path in ("batched", "fast"):
        assert (results[path]["elapsed_ticks"]
                == results["reference"]["elapsed_ticks"])
        assert traces[path] == traces["reference"]
        assert (results[path]["bytes_requested"]
                == results["reference"]["bytes_requested"])

    # The paper's claim: windows keep array bytes out of the
    # partitioning task (only 32-byte window values flow through it).
    win_through = 2 * JLEAVES * 32          # two windows per leaf
    reduction = through["bytes"] / max(1, win_through)
    assert reduction >= MIN_THROUGH_REDUCTION

    # Caching pays on the host clock: fast (cached) vs reference
    # (per-row messages) on identical virtual-time schedules.
    ref_wall = results["reference"]["wall_ms"]
    fast_wall = results["fast"]["wall_ms"]
    win = 1.0 - fast_wall / ref_wall
    if MIN_CACHED_WALL_WIN:
        assert win >= MIN_CACHED_WALL_WIN
    # And the cache actually engages: K is read-only, so every re-read
    # after the first sweep hits.
    assert results["fast"]["cache_hits"] >= JLEAVES * (JSWEEPS - 1)
    assert (results["fast"]["bytes_moved"]
            < results["batched"]["bytes_moved"])

    doc = {"n": JN, "leaves": JLEAVES, "sweeps": JSWEEPS,
           "paths": results, "eager": eager,
           "through_partitioner_reduction_x": round(reduction, 1),
           "cached_vs_reference_wall_win": round(win, 3),
           "trace_identical": True}
    _merge_bench("jacobi_tree", doc)

    rows = [[p, d["wall_ms"], d["elapsed_ticks"], d["bytes_moved"],
             f"{d['cache_hits']}/{d['cache_misses']}"]
            for p, d in results.items()]
    rows.append(["eager", eager["wall_ms"], eager["elapsed_ticks"],
                 through["bytes"], "-"])
    report(format_table(
        ["path", "wall ms", "elapsed", "bytes moved", "hits/misses"],
        rows, title=f"JACOBI TREE {JN}x{JN}, {JLEAVES} leaves, "
                    f"{JSWEEPS} sweeps"))
    report(f"\nbytes through partitioner: eager {through['bytes']} vs "
           f"windows {win_through} ({reduction:.0f}x less)")
    report(f"cached fast path wall-clock win over reference: "
           f"{100 * win:.0f}%")
    report(f"written: {BENCH_PATH.name}")


def test_matmul_tree_dataplane(report):
    args = (MN, MLEAVES, MROUNDS)
    results = {}
    for path in ("reference", "batched", "fast"):
        r, wall, _ = _run_tree(build_matmul_tree, args, path,
                               root="MOWNER")
        results[path] = _path_record(r, wall)

    for path in ("batched", "fast"):
        assert (results[path]["elapsed_ticks"]
                == results["reference"]["elapsed_ticks"])
        assert results[path]["value"] == pytest.approx(
            results["reference"]["value"])

    # B is re-read every round and never written: all re-reads hit.
    assert results["fast"]["cache_hits"] >= MLEAVES * (MROUNDS - 1)
    b_bytes = MN * MN * 8
    saved = (results["batched"]["bytes_moved"]
             - results["fast"]["bytes_moved"])
    assert saved >= MLEAVES * (MROUNDS - 1) * b_bytes

    doc = {"n": MN, "leaves": MLEAVES, "rounds": MROUNDS,
           "paths": results,
           "bytes_saved_by_cache": saved}
    _merge_bench("matmul_tree", doc)

    rows = [[p, d["wall_ms"], d["elapsed_ticks"], d["bytes_moved"],
             f"{d['cache_hits']}/{d['cache_misses']}"]
            for p, d in results.items()]
    report(format_table(
        ["path", "wall ms", "elapsed", "bytes moved", "hits/misses"],
        rows, title=f"MATMUL TREE {MN}x{MN}, {MLEAVES} leaves, "
                    f"{MROUNDS} rounds"))
    report(f"\ncache saves {saved} bytes of B traffic "
           f"({saved // b_bytes}x the {b_bytes}-byte B array)")
    report(f"written: {BENCH_PATH.name}")
