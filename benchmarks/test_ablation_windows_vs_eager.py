"""Ablation A2: windows vs eager data shipping (section 8).

"In such a setting, it is undesirable to have the array elements
actually flow into and out of the partitioning tasks, because no
processing is done in these tasks. ... The array values only need be
transmitted once, to the task assigned the actual processing of the
data."

Both variants run the same two-level partitioning tree (owner ->
partitioner -> 4 leaves) over an NxN array:

* WINDOWS: the partitioner receives one window (32 bytes), shrinks it
  four ways, forwards windows; leaves window-read their block.
* EAGER: the owner sends the whole array to the partitioner, which
  slices it and re-sends the pieces -- bytes flow through the middle.

Measured: total array bytes moved, and the partitioning task's share.
"""

import numpy as np
import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.task import TaskRegistry
from repro.core.taskid import PARENT, SAME
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32
from repro.util.tables import format_table

N = 32          # array is N x N float64 = 8192 bytes
LEAVES = 4


def run_windows():
    reg = TaskRegistry()

    @reg.tasktype("LEAF")
    def leaf(ctx, k):
        ctx.send(PARENT, "HELLO", k)
        w = ctx.accept("WIN").args[0]
        block = ctx.window_read(w)
        ctx.send(PARENT, "SUM", float(block.sum()))

    @reg.tasktype("PARTITIONER")
    def partitioner(ctx):
        w = ctx.accept("WIN").args[0]
        parts = w.split(LEAVES, axis=0)
        for k in range(LEAVES):
            ctx.initiate("LEAF", k, on=SAME)
        who = {}
        for _ in range(LEAVES):
            r = ctx.accept("HELLO")
            who[r.args[0]] = r.sender
        for k in range(LEAVES):
            ctx.send(who[k], "WIN", parts[k])
        total = sum(ctx.accept("SUM").args[0] for _ in range(LEAVES))
        ctx.send(PARENT, "TOTAL", total)

    @reg.tasktype("OWNER")
    def owner(ctx):
        a = np.arange(float(N * N)).reshape(N, N)
        ctx.export_array("A", a)
        ctx.initiate("PARTITIONER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)   # let it start
        ctx.broadcast("WIN", ctx.window("A"), cluster=1)
        return ctx.accept("TOTAL").args[0]

    cfg = Configuration(clusters=(ClusterSpec(1, 3, 8),), name="win")
    vm = PiscesVM(cfg, registry=reg, machine=nasa_langley_flex32())
    r = vm.run("OWNER")
    array_bytes_moved = r.stats.window_bytes_read + r.stats.window_bytes_written
    return r.value, array_bytes_moved, 0, r.elapsed


def run_eager():
    reg = TaskRegistry()
    through_partitioner = {"bytes": 0}

    @reg.tasktype("LEAF")
    def leaf(ctx, k):
        ctx.send(PARENT, "HELLO", k)
        block = ctx.accept("DATA").args[0]
        ctx.send(PARENT, "SUM", float(block.sum()))

    @reg.tasktype("PARTITIONER")
    def partitioner(ctx):
        a = ctx.accept("DATA").args[0]          # whole array flows IN
        through_partitioner["bytes"] += a.nbytes
        blocks = np.array_split(a, LEAVES, axis=0)
        for k in range(LEAVES):
            ctx.initiate("LEAF", k, on=SAME)
        who = {}
        for _ in range(LEAVES):
            r = ctx.accept("HELLO")
            who[r.args[0]] = r.sender
        for k in range(LEAVES):
            ctx.send(who[k], "DATA", blocks[k])  # ... and OUT again
            through_partitioner["bytes"] += blocks[k].nbytes
        total = sum(ctx.accept("SUM").args[0] for _ in range(LEAVES))
        ctx.send(PARENT, "TOTAL", total)

    @reg.tasktype("OWNER")
    def owner(ctx):
        a = np.arange(float(N * N)).reshape(N, N)
        ctx.initiate("PARTITIONER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        ctx.broadcast("DATA", a, cluster=1)
        return ctx.accept("TOTAL").args[0]

    cfg = Configuration(clusters=(ClusterSpec(1, 3, 8),), name="eager")
    vm = PiscesVM(cfg, registry=reg, machine=nasa_langley_flex32())
    r = vm.run("OWNER")
    # array payload bytes: owner->partitioner + partitioner->leaves
    array_bytes_moved = N * N * 8 * 2
    return (r.value, array_bytes_moved,
            through_partitioner["bytes"], r.elapsed)


def test_windows_vs_eager(benchmark, report):
    results = benchmark.pedantic(
        lambda: (run_windows(), run_eager()), rounds=1, iterations=1)
    (w_total, w_moved, w_through, w_elapsed) = results[0]
    (e_total, e_moved, e_through, e_elapsed) = results[1]
    expect = float(np.arange(float(N * N)).sum())
    assert w_total == e_total == expect   # same answer both ways

    array_bytes = N * N * 8
    rows = [
        ["windows", w_moved, w_through, w_elapsed],
        ["eager", e_moved, e_through, e_elapsed],
    ]
    report(format_table(
        ["variant", "array bytes moved", "bytes through partitioner",
         "elapsed"],
        rows, title=f"A2: WINDOWS vs EAGER ({N}x{N} f8 array = "
                    f"{array_bytes} bytes, {LEAVES} leaves)"))

    # The paper's claim, quantified:
    assert w_moved == array_bytes          # moved exactly once
    assert w_through == 0                  # nothing flows through the middle
    assert e_moved == 2 * array_bytes      # in and out again
    assert e_through == 2 * array_bytes
    report("")
    report(f"windows move the array exactly once ({w_moved} bytes); "
           f"eager shipping moves it {e_moved // array_bytes}x")
