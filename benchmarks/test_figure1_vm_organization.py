"""Figure 1: PISCES 2 VIRTUAL MACHINE ORGANIZATION.

The paper's only figure diagrams the virtual machine: clusters holding
slots (task controller, user controller, user tasks, free slots), the
intra-cluster networks, and the message-passing network joining the
clusters.  This benchmark regenerates the figure from a *live* booted
VM -- with running user tasks occupying slots, as drawn -- and checks
every structural element the figure shows.
"""

import pytest

from repro.core.task import TaskRegistry
from repro.core.vm import PiscesVM
from repro.exec_env.display import render_vm_figure
from repro.exec_env.monitor import Monitor

from _paperconfig import section9_configuration


def build_figure(nasa_machine):
    reg = TaskRegistry()

    @reg.tasktype("USERTASK")
    def usertask(ctx):
        ctx.accept("STOP", delay=10**9, timeout_ok=True)

    vm = PiscesVM(section9_configuration(), registry=reg,
                  machine=nasa_machine)
    mon = Monitor(vm)
    # Populate some slots so the figure shows "User task" entries like
    # the paper's drawing (which shows a mix of tasks and <not in use>).
    for cluster in (1, 2, 3):
        mon.initiate_task("USERTASK", cluster=cluster)
    mon.pump()
    fig = render_vm_figure(vm)
    vm.shutdown()
    return fig


def test_figure1_regeneration(benchmark, report, nasa_machine):
    fig = benchmark.pedantic(build_figure, args=(nasa_machine,),
                             rounds=1, iterations=1)
    report("FIGURE 1 (regenerated from the live virtual machine)")
    report(fig)

    # Structural elements of the paper's figure:
    assert "PISCES 2 VIRTUAL MACHINE ORGANIZATION" in fig
    for c in (1, 2, 3, 4):
        assert f"CLUSTER {c}" in fig                    # cluster boxes
    assert fig.count("Task controller") == 4            # one per cluster
    assert fig.count("User controller") == 1            # terminal cluster
    assert fig.count("File controller") == 1
    assert fig.count("User task USERTASK") == 3         # occupied slots
    assert fig.count("<not in use>") == 16 - 3          # 4x4 slots - 3
    assert "Intra-" in fig and "cluster" in fig         # intra-cluster net
    assert "Message-passing network" in fig             # inter-cluster net
