"""Benchmark regression gate: fresh ``BENCH_*.json`` vs committed baseline.

Usage (what the CI ``profile-smoke`` job runs)::

    python benchmarks/compare.py --baseline-dir .ci-baseline --fresh-dir .

Compares every ``BENCH_*.json`` present in *both* directories (or only
the names given as positional arguments) through the shared ``gate``
section (see ``benchmarks/_bench_schema.py``):

* ``gate.virtual`` -- elapsed virtual ticks per workload.  These are
  the determinism contract: a key present in both records must be
  **exactly equal**; any difference fails the gate.  Keys present in
  only one side (the workload matrix changed) are reported but do not
  fail.
* ``gate.wall_ratios`` -- machine-independent on/off overhead ratios
  (profiling-on / profiling-off and the like).  A fresh ratio more than
  ``--max-wall-regression`` (default 1.15, i.e. +15%) above the
  baseline fails.
* ``gate.wall_seconds`` -- absolute wall times, held to the same bound
  but only when the baseline is above a noise floor (50 ms) and
  neither record is a smoke run.

Stdlib only; exits nonzero on any failure so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Tuple

#: Baseline wall times below this are dominated by noise, not work.
WALL_NOISE_FLOOR_S = 0.05


def _load(path: Path) -> Dict[str, Any]:
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a JSON object")
    gate = doc.get("gate")
    if not isinstance(gate, dict):
        raise ValueError(f"{path}: no gate section (regenerate with "
                         "benchmarks/_bench_schema.py)")
    return doc


def compare_records(name: str, base: Dict[str, Any], fresh: Dict[str, Any],
                    max_wall_regression: float,
                    ) -> Tuple[List[str], List[str]]:
    """Returns (failures, notes) for one benchmark pair."""
    failures: List[str] = []
    notes: List[str] = []
    bg, fg = base["gate"], fresh["gate"]

    bv = bg.get("virtual", {})
    fv = fg.get("virtual", {})
    for key in sorted(set(bv) & set(fv)):
        if int(bv[key]) != int(fv[key]):
            failures.append(
                f"{name}: virtual time changed on {key}: "
                f"{bv[key]} -> {fv[key]} (must be bit-identical)")
    for key in sorted(set(bv) ^ set(fv)):
        side = "baseline" if key in bv else "fresh"
        notes.append(f"{name}: virtual key {key} only in {side} "
                     "(workload matrix changed)")

    smoke = bool(base.get("smoke")) or bool(fresh.get("smoke"))
    br = bg.get("wall_ratios", {})
    fr = fg.get("wall_ratios", {})
    for key in sorted(set(br) & set(fr)):
        b, f = float(br[key]), float(fr[key])
        if smoke:
            notes.append(f"{name}: wall ratio {key} {b:.3f} -> {f:.3f} "
                         "(smoke run, not gated)")
        elif b > 0 and f > b * max_wall_regression:
            failures.append(
                f"{name}: wall ratio regressed on {key}: "
                f"{b:.3f} -> {f:.3f} (> x{max_wall_regression})")

    bw = bg.get("wall_seconds", {})
    fw = fg.get("wall_seconds", {})
    for key in sorted(set(bw) & set(fw)):
        b, f = float(bw[key]), float(fw[key])
        if smoke or b < WALL_NOISE_FLOOR_S:
            continue
        if f > b * max_wall_regression:
            failures.append(
                f"{name}: wall time regressed on {key}: "
                f"{b:.3f}s -> {f:.3f}s (> x{max_wall_regression})")
    return failures, notes


def main(argv: List[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="compare.py",
        description="Gate fresh BENCH_*.json records against a baseline.")
    ap.add_argument("names", nargs="*",
                    help="benchmark names (default: every BENCH_*.json "
                         "present in both directories)")
    ap.add_argument("--baseline-dir", default=".", type=Path)
    ap.add_argument("--fresh-dir", default=".", type=Path)
    ap.add_argument("--max-wall-regression", default=1.15, type=float)
    args = ap.parse_args(argv)

    if args.names:
        pairs = [(n, args.baseline_dir / f"BENCH_{n}.json",
                  args.fresh_dir / f"BENCH_{n}.json") for n in args.names]
        missing = [str(p) for _, b, f in pairs for p in (b, f)
                   if not p.exists()]
        if missing:
            print("compare.py: missing record(s): " + ", ".join(missing))
            return 2
    else:
        base_names = {p.name for p in args.baseline_dir.glob("BENCH_*.json")}
        fresh_names = {p.name for p in args.fresh_dir.glob("BENCH_*.json")}
        both = sorted(base_names & fresh_names)
        if not both:
            print(f"compare.py: no BENCH_*.json present in both "
                  f"{args.baseline_dir} and {args.fresh_dir}")
            return 2
        pairs = [(n[len("BENCH_"):-len(".json")],
                  args.baseline_dir / n, args.fresh_dir / n) for n in both]
        for n in sorted(base_names ^ fresh_names):
            print(f"note: {n} present on one side only, skipped")

    all_failures: List[str] = []
    for name, bpath, fpath in pairs:
        try:
            base, fresh = _load(bpath), _load(fpath)
        except (ValueError, json.JSONDecodeError) as exc:
            all_failures.append(f"{name}: unreadable record: {exc}")
            continue
        failures, notes = compare_records(
            name, base, fresh, args.max_wall_regression)
        status = "FAIL" if failures else "ok"
        print(f"[{status}] {name}: "
              f"{len(base['gate'].get('virtual', {}))} virtual keys, "
              f"{len(base['gate'].get('wall_ratios', {}))} ratio keys")
        for line in notes:
            print(f"  note: {line}")
        for line in failures:
            print(f"  FAIL: {line}")
        all_failures.extend(failures)

    if all_failures:
        print(f"\ncompare.py: {len(all_failures)} regression(s)")
        return 1
    print("\ncompare.py: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
