"""Ablation A4: programmer mapping (PISCES) vs system mapping (SCHEDULE).

Section 3: "SCHEDULE maps the program onto the available hardware in an
appropriate way for parallel execution.  In contrast, PISCES 2 expects
the programmer to control the mapping."  We run the same fork/join
workload (a root, W independent heavy routines, a join) three ways:

* serial baseline (total work);
* SCHEDULE-style: declare the DAG, let the list scheduler place it;
* PISCES: the programmer maps it as a force over explicit PEs.

Expected shape: both parallel systems land well under serial and within
sight of each other; PISCES carries run-time-library overheads (message
passing, barriers) while SCHEDULE carries dispatch overhead -- neither
dominated in the era's debates, but both beat serial by ~W/critical
path.
"""

import pytest

from repro.baselines.schedule import ScheduleProgram, ScheduleRunner
from repro.baselines.seq import run_program_serial
from repro.config.configuration import ClusterSpec, Configuration
from repro.core.task import TaskRegistry
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32, small_flex
from repro.util.tables import format_table

W = 8            # parallel routines
UNIT_COST = 2000
PES = 4


def build_dag():
    p = ScheduleProgram()
    p.unit("setup", 200)
    for i in range(W):
        p.unit(f"work{i}", UNIT_COST, deps=["setup"])
    p.unit("join", 200, deps=[f"work{i}" for i in range(W)])
    return p


def run_pisces_force():
    reg = TaskRegistry()

    def region(m):
        m.compute(200 // m.force_size or 1)      # setup share
        for i in m.presched(range(W)):
            m.compute(UNIT_COST)
        m.barrier(lambda: None)                   # the join

    @reg.tasktype("FJ")
    def fj(ctx):
        ctx.forcesplit(region)

    cfg = Configuration(clusters=(
        ClusterSpec(1, 3, 2, tuple(range(4, 4 + PES - 1))),),
        name="pisces-fj")
    vm = PiscesVM(cfg, registry=reg, machine=nasa_langley_flex32())
    r = vm.run("FJ")
    return r.elapsed


def run_all():
    serial = run_program_serial(build_dag())
    sched = ScheduleRunner(build_dag(), n_pes=PES).run()
    pisces = run_pisces_force()
    return serial, sched, pisces


def test_pisces_vs_schedule(benchmark, report):
    serial, sched, pisces = benchmark.pedantic(run_all, rounds=1,
                                               iterations=1)
    rows = [
        ["serial (1 PE)", serial, "1.00x", "-"],
        ["SCHEDULE-style (system-mapped)", sched.elapsed,
         f"{serial / sched.elapsed:.2f}x",
         f"critical path {sched.critical_path}"],
        ["PISCES 2 force (programmer-mapped)", pisces,
         f"{serial / pisces:.2f}x", f"{PES}-member force"],
    ]
    report(format_table(
        ["system", "elapsed (ticks)", "speedup", "notes"],
        rows, title=f"A4: PISCES vs SCHEDULE ({W} routines x {UNIT_COST} "
                    f"ticks on {PES} PEs)"))

    # Shapes: both parallel runs beat serial substantially ...
    assert sched.elapsed < serial / 2
    assert pisces < serial / 2
    # ... neither can beat the critical-path/work lower bound ...
    lower = max(sched.critical_path,
                (serial // PES))
    assert sched.elapsed >= lower * 0.9
    # ... and the two systems land within 2x of each other (neither
    # model is an order of magnitude better on a clean fork/join).
    ratio = max(pisces, sched.elapsed) / min(pisces, sched.elapsed)
    assert ratio < 2.0, f"unexpected gap {ratio:.2f}x"
    report("")
    report(f"parallel-system gap: {ratio:.2f}x (each carries its own "
           f"overhead model)")
