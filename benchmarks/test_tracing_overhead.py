"""Observability overhead: instrumentation must be free when disabled.

Every metric site in the engine guards on ``registry.enabled`` before
doing any work, and metric bookkeeping never touches virtual time.  This
benchmark runs the same Jacobi-with-windows workload three ways --

* OFF:      metrics disabled, tracing disabled (the default);
* METRICS:  metrics enabled, tracing disabled;
* FULL:     metrics enabled, all eight trace event types on;

-- and checks that (a) virtual elapsed time is bit-identical across all
three (observability must not perturb the simulation), and (b) the
wall-clock cost of the disabled configuration is within noise of a
metered run's guards (generous bound: the three variants differ by well
under an order of magnitude).  Writes a BENCH JSON artifact alongside
the text report.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.apps.jacobi import run_jacobi_windows
from repro.config.configuration import ClusterSpec, Configuration
from repro.util.tables import format_table

N = 24
SWEEPS = 3
WORKERS = 2
REPEATS = 3

ALL_TRACE = ("TASK_INIT", "TASK_TERM", "MSG_SEND", "MSG_ACCEPT",
             "LOCK", "UNLOCK", "BARRIER_ENTER", "FORCE_SPLIT")


def _config(metrics: bool, trace: bool) -> Configuration:
    clusters = tuple(ClusterSpec(number=i, primary_pe=2 + i,
                                 slots=max(2, WORKERS))
                     for i in range(1, 3))
    return Configuration(clusters=clusters, name="jacobi-overhead",
                         metrics_enabled=metrics,
                         trace_events=ALL_TRACE if trace else ())


def _run_variant(metrics: bool, trace: bool):
    """Best-of-REPEATS wall time and the (deterministic) virtual time."""
    best_wall = None
    elapsed = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        r = run_jacobi_windows(n=N, sweeps=SWEEPS, n_workers=WORKERS,
                               config=_config(metrics, trace))
        wall = time.perf_counter() - t0
        if best_wall is None or wall < best_wall:
            best_wall = wall
        if elapsed is None:
            elapsed = int(r.elapsed)
        else:
            assert elapsed == r.elapsed, "run is not deterministic"
    return best_wall, elapsed, r


def test_observability_overhead(report, report_dir):
    wall_off, virt_off, _ = _run_variant(metrics=False, trace=False)
    wall_met, virt_met, r_met = _run_variant(metrics=True, trace=False)
    wall_full, virt_full, r_full = _run_variant(metrics=True, trace=True)

    # (a) Observability never perturbs virtual time.
    assert virt_off == virt_met == virt_full

    # (b) Generous wall-clock bound: the discrete-event engine dominates
    # the run time; instrumentation must stay within a small multiple.
    assert wall_met < wall_off * 8
    assert wall_full < wall_off * 8

    n_instruments = sum(len(s) for s in (r_met.vm.metrics._counters,
                                         r_met.vm.metrics._gauges,
                                         r_met.vm.metrics._histograms))
    rows = [
        ["OFF", f"{wall_off * 1e3:.1f}", virt_off, 0, 0],
        ["METRICS", f"{wall_met * 1e3:.1f}", virt_met, n_instruments, 0],
        ["FULL", f"{wall_full * 1e3:.1f}", virt_full, n_instruments,
         len(r_full.vm.tracer.events)],
    ]
    report(format_table(
        ["variant", "wall ms (best of 3)", "virtual ticks",
         "instruments", "trace events"],
        rows, title="OBSERVABILITY OVERHEAD (jacobi 24x24, 3 sweeps)"))
    report(f"metrics/off wall ratio: {wall_met / wall_off:.2f}")
    report(f"full/off wall ratio:    {wall_full / wall_off:.2f}")

    bench = {
        "bench": "tracing_overhead",
        "workload": {"app": "jacobi_windows", "n": N, "sweeps": SWEEPS,
                     "workers": WORKERS, "repeats": REPEATS},
        "virtual_ticks": virt_off,
        "wall_seconds": {"off": wall_off, "metrics": wall_met,
                         "full": wall_full},
        "ratios": {"metrics_over_off": wall_met / wall_off,
                   "full_over_off": wall_full / wall_off},
        "instruments": n_instruments,
        "trace_events": len(r_full.vm.tracer.events),
        "virtual_time_identical": True,
    }
    out = Path(report_dir) / "tracing_overhead.json"
    out.write_text(json.dumps(bench, indent=1, sort_keys=True) + "\n")
    report(f"BENCH JSON: {out}")
