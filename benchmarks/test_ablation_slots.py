"""Ablation A6: slots as the degree-of-multiprogramming control (§9).

"The number of slots corresponds to the number of user tasks on the
FLEX PE that may be simultaneously time-sharing the CPU. ... Thus the
number of slots is a partial control on the degree of multiprogramming
allowed on a PE."

Multiprogramming pays off when tasks *wait*: while one task blocks on a
reply from another cluster, another slot's task can use the CPU.  This
benchmark runs 6 request/compute tasks in one cluster against a remote
responder, sweeping the cluster's slot count: with 1 slot the tasks
serialize end-to-end (each holds the only slot for its whole lifetime,
message waits included); with more slots their waits overlap.  Pure
compute, in contrast, gains nothing from extra slots -- one CPU is one
CPU.
"""

import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.task import TaskRegistry
from repro.core.taskid import Cluster, PARENT, SENDER
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32
from repro.util.tables import format_table

N_TASKS = 6
ROUNDS = 6
THINK = 40         # compute between requests (small vs the wait)


def run_case(slots: int, compute_only: bool):
    reg = TaskRegistry()

    @reg.tasktype("RESPONDER")
    def responder(ctx):
        while True:
            res = ctx.accept("REQ", "STOP", count=1)
            m = res.messages[0]
            if m.mtype == "STOP":
                return
            ctx.compute(200)          # service time
            ctx.send(SENDER, "REP")

    @reg.tasktype("CLIENT")
    def client(ctx, responder_tid):
        for _ in range(ROUNDS):
            ctx.compute(THINK)
            if not compute_only:
                ctx.send(responder_tid, "REQ")
                ctx.accept("REP")
            else:
                ctx.compute(200)      # same total work, no waiting
        ctx.send(PARENT, "DONE")

    @reg.tasktype("MAIN")
    def main(ctx):
        ctx.initiate("RESPONDER", on=Cluster(2))
        ctx.accept("X", delay=500, timeout_ok=True)   # let it start
        responder_task = [t for t in ctx.vm.tasks.values()
                          if t.ttype.name == "RESPONDER"][0]
        for _ in range(N_TASKS):
            ctx.initiate("CLIENT", responder_task.tid, on=Cluster(1))
        ctx.accept("DONE", count=N_TASKS)
        ctx.send(responder_task.tid, "STOP")

    cfg = Configuration(clusters=(ClusterSpec(1, 3, slots),
                                  ClusterSpec(2, 4, 4)),
                        name=f"slots-{slots}")
    vm = PiscesVM(cfg, registry=reg, machine=nasa_langley_flex32())
    r = vm.run("MAIN", on=Cluster(2))
    return r.elapsed


def run_all():
    waity = {s: run_case(s, compute_only=False) for s in (1, 2, 3, 6)}
    compute = {s: run_case(s, compute_only=True) for s in (1, 6)}
    return waity, compute


def test_slots_multiprogramming(benchmark, report):
    waity, compute = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[f"{s} slot(s)", waity[s],
             f"{waity[1] / waity[s]:.2f}x"] for s in sorted(waity)]
    report(format_table(
        ["cluster-1 slots", "elapsed (ticks)", "vs 1 slot"],
        rows, title=f"A6: SLOTS AND MULTIPROGRAMMING ({N_TASKS} "
                    f"request/reply tasks x {ROUNDS} rounds)"))
    report("")
    report(f"pure-compute control: 1 slot {compute[1]}, "
           f"6 slots {compute[6]} ticks (one CPU is one CPU)")

    # Message-wait-bound tasks overlap with more slots (gains saturate
    # once the remote responder becomes the bottleneck):
    assert waity[2] < waity[1]
    assert waity[6] < waity[1] * 0.75
    # Pure compute gains (almost) nothing from extra slots:
    assert abs(compute[6] - compute[1]) < compute[1] * 0.1
