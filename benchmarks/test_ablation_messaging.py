"""Ablation A5: message-passing costs (sections 6, 11).

Measures the run-time library's communication behaviour:

* point-to-point round-trip cost, intra- vs inter-cluster (the virtual
  machine makes inter-cluster latency visible);
* broadcast vs per-task sends (one statement, N deliveries and N
  allocations);
* heap churn: allocations == frees over a long exchange.
"""

import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.task import TaskRegistry
from repro.core.taskid import Broadcast, Cluster, PARENT, SENDER
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32
from repro.util.tables import format_table

ROUNDS = 40


def run_pingpong(same_cluster: bool):
    reg = TaskRegistry()

    @reg.tasktype("ECHO")
    def echo(ctx):
        ctx.send(PARENT, "READY")
        for _ in range(ROUNDS):
            res = ctx.accept("PING")
            ctx.send(SENDER, "PONG", res.args[0])

    @reg.tasktype("MAIN")
    def main(ctx):
        where = Cluster(1) if same_cluster else Cluster(2)
        ctx.initiate("ECHO", on=where)
        ctx.accept("READY")
        peer = ctx.sender
        t0 = ctx.now()
        for i in range(ROUNDS):
            ctx.send(peer, "PING", i)
            ctx.accept("PONG")
        return (ctx.now() - t0) / ROUNDS

    cfg = Configuration(clusters=(ClusterSpec(1, 3, 4),
                                  ClusterSpec(2, 4, 4)), name="pp")
    vm = PiscesVM(cfg, registry=reg, machine=nasa_langley_flex32())
    r = vm.run("MAIN")
    return r.value, r.stats


def run_broadcast(n_listeners: int):
    reg = TaskRegistry()

    @reg.tasktype("LISTENER")
    def listener(ctx):
        ctx.send(PARENT, "READY")
        ctx.accept("SHOUT")
        ctx.send(PARENT, "HEARD")

    @reg.tasktype("MAIN")
    def main(ctx):
        for i in range(n_listeners):
            ctx.initiate("LISTENER", on=1 + (i % 2))
        ctx.accept("READY", count=n_listeners)
        t0 = ctx.now()
        n = ctx.broadcast("SHOUT")
        ctx.accept("HEARD", count=n_listeners)
        return n, ctx.now() - t0

    cfg = Configuration(clusters=(ClusterSpec(1, 3, 8),
                                  ClusterSpec(2, 4, 8)), name="bc")
    vm = PiscesVM(cfg, registry=reg, machine=nasa_langley_flex32())
    r = vm.run("MAIN")
    heap = vm.machine.shared.stats
    return r.value, heap


def run_all():
    intra, _ = run_pingpong(same_cluster=True)
    inter, stats = run_pingpong(same_cluster=False)
    (ndeliv, bc_time), heap = run_broadcast(8)
    return intra, inter, stats, ndeliv, bc_time, heap


def test_messaging_costs(benchmark, report):
    intra, inter, stats, ndeliv, bc_time, heap = benchmark.pedantic(
        run_all, rounds=1, iterations=1)
    rows = [
        ["round-trip, same cluster", f"{intra:.0f} ticks"],
        ["round-trip, other cluster", f"{inter:.0f} ticks"],
        ["broadcast deliveries (8 listeners)", ndeliv],
        ["broadcast completion", f"{bc_time} ticks"],
        ["heap allocs == frees after run",
         f"{heap.total_allocs - 1} / {heap.total_frees}"],
    ]
    report(format_table(["measure", "value"], rows,
                        title=f"A5: MESSAGE PASSING ({ROUNDS}-round "
                              f"ping-pong)"))

    # Inter-cluster latency is visible but same order of magnitude.
    assert inter > intra
    assert inter < intra * 4
    # One broadcast statement delivered to every live task but the sender.
    assert ndeliv == 8
    # Messages freed as accepted: everything allocated was freed except
    # the static system tables (one alloc per cluster, never freed).
    assert heap.total_allocs - heap.total_frees == 2   # 2 cluster tables
    report("")
    report(f"inter/intra latency ratio: {inter / intra:.2f}")
