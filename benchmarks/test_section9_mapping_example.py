"""Section 9's worked mapping example, regenerated and verified.

The paper walks one concrete virtual-machine-to-hardware mapping on the
18 usable FLEX PEs (items a-e) and states its consequences, including
"The maximum number of simultaneous tasks that might be running on one
of these PE's is equal to the sum of the slots allocated in both
clusters, 4+4=8 here."  This benchmark builds that exact configuration,
prints the mapping table, and verifies every stated property -- then
actually *drives* the shared force PEs to the stated maximum.
"""

import pytest

from repro.core.task import TaskRegistry
from repro.core.taskid import Cluster
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32
from repro.util.tables import format_table

from _paperconfig import section9_configuration


def run_example():
    cfg = section9_configuration()
    reg = TaskRegistry()

    def region(m):
        m.compute(2000)
        return m.vm.engine.current().pe

    @reg.tasktype("FTASK")
    def ftask(ctx):
        return ctx.forcesplit(region)

    @reg.tasktype("DRIVER")
    def driver(ctx):
        # Fill all four slots of clusters 3 and 4 with force tasks: the
        # nine shared PEs 7-15 then carry members from up to 8 tasks.
        for _ in range(4):
            ctx.initiate("FTASK", on=Cluster(3))
            ctx.initiate("FTASK", on=Cluster(4))
        ctx.accept("X", delay=300_000, timeout_ok=True)

    vm = PiscesVM(cfg, registry=reg, machine=nasa_langley_flex32())
    vm.run("DRIVER", on=Cluster(1), shutdown=False)
    force_pes_results = [t.result for t in vm.tasks.values()
                         if t.ttype.name == "FTASK"]
    vm.shutdown()
    return cfg, vm, force_pes_results


def test_section9_mapping(benchmark, report):
    cfg, vm, force_results = benchmark.pedantic(run_example, rounds=1,
                                                iterations=1)
    rows = []
    for c in sorted(cfg.clusters, key=lambda c: c.number):
        rows.append([c.number, c.primary_pe, c.slots,
                     ",".join(map(str, c.secondary_pes)) or "-",
                     1 + len(c.secondary_pes)])
    report(format_table(
        ["cluster", "primary PE", "slots", "force PEs", "force size"],
        rows, title="SECTION 9 MAPPING EXAMPLE (items a-e)"))
    mp_rows = [[pe, cfg.max_multiprogramming(pe)]
               for pe in (3, 4, 5, 6, 7, 10, 15, 16, 20)]
    report("")
    report(format_table(["PE", "max simultaneous user tasks"], mp_rows,
                        title="MULTIPROGRAMMING BOUNDS (section 9 item 4)"))

    # a-b: four clusters on PEs 3-6 with 4 slots each.
    assert cfg.cluster_numbers() == [1, 2, 3, 4]
    assert [cfg.cluster(i).primary_pe for i in (1, 2, 3, 4)] == [3, 4, 5, 6]
    # c: PEs 7-15 run forces for both clusters 3 and 4 -> bound 4+4=8.
    for pe in range(7, 16):
        assert cfg.max_multiprogramming(pe) == 8
    # d: PEs 16-20 run forces for cluster 2 only.
    for pe in range(16, 21):
        assert cfg.max_multiprogramming(pe) == 4
    # e: cluster 1 has no secondary PEs -> forces of size 1.
    assert cfg.cluster(1).secondary_pes == ()

    # Behavioral check: all 8 force tasks ran, each with 10 members on
    # primary + PEs 7..15, i.e. the shared PEs really carried members
    # of every one of the 4+4 tasks.
    assert len(force_results) == 8
    for pes in force_results:
        assert len(pes) == 10
        assert set(pes[1:]) == set(range(7, 16))
    report("")
    report(f"verified: 8 simultaneous force tasks (4 per cluster) ran "
           f"10-member forces over the shared PEs 7-15")
