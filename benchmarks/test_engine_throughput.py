"""Wall-clock throughput of the scheduler/messaging fast path.

The first point in the repo's perf trajectory (``BENCH_*.json``): for
each workload and size, run the identical program under both engine
dispatchers --

* ``indexed``: lazy-deletion heap dispatch + per-process grant events
  (O(log n) per dispatch, exactly one thread woken per switch);
* ``scan``: the seed's O(n) linear scan + broadcast wakeups, kept as
  the reference oracle --

measure dispatches/second and end-to-end wall time, assert the virtual
times are **bit-identical** (the determinism contract), and write
``BENCH_engine_throughput.json`` at the repo root.

Sizes shrink when ``ENGINE_BENCH_SMOKE`` is set (the CI smoke job);
the full run's largest configuration has >= 100 simulated processes
and a >= 50-deep in-queue backlog, and must show >= 2x wall-clock
improvement for the indexed engine.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from _bench_schema import make_record, write_bench

from repro.apps.jacobi import run_jacobi_windows
from repro.apps.matmul import run_matmul_tasks
from repro.apps.pipeline import run_pipeline
from repro.config.configuration import ClusterSpec, Configuration
from repro.core.accept import ALL_RECEIVED
from repro.core.task import TaskRegistry
from repro.core.taskid import ANY, PARENT
from repro.core.vm import PiscesVM
from repro.flex.presets import small_flex
from repro.mmos.scheduler import Engine

SMOKE = bool(os.environ.get("ENGINE_BENCH_SMOKE"))
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_throughput.json"

#: Minimum indexed-vs-scan speedup demanded on the largest scheduler
#: stress configuration (full sizes; the smoke run only sanity-checks).
MIN_SPEEDUP = 2.0 if not SMOKE else 1.2


# ------------------------------------------------------------- workloads --

def sched_stress(n_procs: int, switches: int, dispatcher: str):
    """Pure engine churn: ``n_procs`` processes on 8 PEs, each cycling
    charge/preempt with a periodic deadline nap (heap re-key path)."""
    eng = Engine(small_flex(8), dispatcher=dispatcher)
    pes = sorted(eng.machine.pes)

    def body():
        for i in range(switches):
            eng.charge(3)
            eng.preempt(2)
            if i % 5 == 4:
                eng.block("nap", deadline=eng.now() + 7)

    for k in range(n_procs):
        eng.spawn(f"w{k}", pes[k % len(pes)], body)
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    dispatches, elapsed = eng.dispatch_count, eng.machine.elapsed()
    eng.shutdown()
    return wall, dispatches, elapsed


def build_backlog_registry(rounds: int, backlog: int) -> TaskRegistry:
    """The section-13 hazard: LOG messages pile up unaccepted while the
    receiver repeatedly ACCEPTs a different type (GO)."""
    reg = TaskRegistry()

    @reg.tasktype("FLOOD")
    def flood(ctx):
        for _ in range(rounds):
            for i in range(backlog):
                ctx.send(PARENT, "LOG", i)
            ctx.send(PARENT, "GO")

    @reg.tasktype("BMAIN")
    def bmain(ctx):
        ctx.initiate("FLOOD", on=ANY)
        for _ in range(rounds):
            ctx.accept("GO")         # must skip the growing LOG backlog
        drained = ctx.accept(("LOG", ALL_RECEIVED))
        return drained.count

    return reg


def inqueue_backlog(rounds: int, backlog: int, dispatcher: str):
    os.environ["PISCES_DISPATCHER"] = dispatcher
    try:
        reg = build_backlog_registry(rounds, backlog)
        config = Configuration(
            clusters=(ClusterSpec(1, 3, 4), ClusterSpec(2, 4, 4)),
            name="inqueue-backlog")
        vm = PiscesVM(config, registry=reg)
        t0 = time.perf_counter()
        r = vm.run("BMAIN")
        wall = time.perf_counter() - t0
        assert r.value == rounds * backlog, "backlog drain lost messages"
        dispatches, elapsed = vm.engine.dispatch_count, r.elapsed
        vm.shutdown()
        return wall, dispatches, elapsed
    finally:
        os.environ.pop("PISCES_DISPATCHER", None)


def app_workload(fn, dispatcher: str):
    """Run one app under ``dispatcher``; returns (wall, dispatches, vt)."""
    os.environ["PISCES_DISPATCHER"] = dispatcher
    try:
        t0 = time.perf_counter()
        r = fn()
        wall = time.perf_counter() - t0
        dispatches = r.vm.engine.dispatch_count
        elapsed = int(r.elapsed)
        r.vm.shutdown()
        return wall, dispatches, elapsed
    finally:
        os.environ.pop("PISCES_DISPATCHER", None)


def _sizes():
    """(workload name, size name, runner(dispatcher), population note)."""
    if SMOKE:
        stress_small, stress_large = (10, 8), (40, 12)
        jac_small, jac_large = (8, 2, 3), (12, 2, 6)
        mm_small, mm_large = (8, 3), (12, 6)
        pipe_small, pipe_large = (3, 8), (5, 20)
        back_small, back_large = (3, 10), (4, 50)
    else:
        stress_small, stress_large = (24, 15), (120, 30)
        jac_small, jac_large = (12, 2, 4), (24, 4, 10)
        mm_small, mm_large = (10, 4), (24, 10)
        pipe_small, pipe_large = (3, 12), (8, 48)
        back_small, back_large = (4, 12), (6, 60)
    return [
        ("sched_stress", "small",
         lambda d: sched_stress(*stress_small, d),
         {"n_procs": stress_small[0]}),
        ("sched_stress", "large",
         lambda d: sched_stress(*stress_large, d),
         {"n_procs": stress_large[0]}),
        ("jacobi_windows", "small",
         lambda d: app_workload(lambda: run_jacobi_windows(
             n=jac_small[0], sweeps=jac_small[1], n_workers=jac_small[2]), d),
         {"n": jac_small[0], "workers": jac_small[2]}),
        ("jacobi_windows", "large",
         lambda d: app_workload(lambda: run_jacobi_windows(
             n=jac_large[0], sweeps=jac_large[1], n_workers=jac_large[2]), d),
         {"n": jac_large[0], "workers": jac_large[2]}),
        ("matmul_tasks", "small",
         lambda d: app_workload(lambda: run_matmul_tasks(
             n=mm_small[0], n_workers=mm_small[1]), d),
         {"n": mm_small[0], "workers": mm_small[1]}),
        ("matmul_tasks", "large",
         lambda d: app_workload(lambda: run_matmul_tasks(
             n=mm_large[0], n_workers=mm_large[1]), d),
         {"n": mm_large[0], "workers": mm_large[1]}),
        ("pipeline", "small",
         lambda d: app_workload(lambda: run_pipeline(
             n_stages=pipe_small[0], items=list(range(pipe_small[1]))), d),
         {"stages": pipe_small[0], "items": pipe_small[1]}),
        ("pipeline", "large",
         lambda d: app_workload(lambda: run_pipeline(
             n_stages=pipe_large[0], items=list(range(pipe_large[1])),
             slots=8), d),
         {"stages": pipe_large[0], "items": pipe_large[1]}),
        ("inqueue_backlog", "small",
         lambda d: inqueue_backlog(*back_small, d),
         {"rounds": back_small[0], "backlog": back_small[1]}),
        ("inqueue_backlog", "large",
         lambda d: inqueue_backlog(*back_large, d),
         {"rounds": back_large[0], "backlog": back_large[1]}),
    ]


# ------------------------------------------------------------ the bench --

def test_engine_throughput(report):
    rows = []
    for workload, size, runner, params in _sizes():
        per = {}
        virtual = {}
        dispatches = {}
        for dispatcher in ("scan", "indexed"):
            wall, n_disp, vt = runner(dispatcher)
            per[dispatcher] = {
                "wall_s": round(wall, 4),
                "dispatches_per_s": round(n_disp / wall, 1) if wall > 0 else None,
            }
            virtual[dispatcher] = vt
            dispatches[dispatcher] = n_disp
        # The determinism contract: both dispatchers replay the exact
        # same virtual history.
        assert virtual["indexed"] == virtual["scan"], (
            f"{workload}/{size}: virtual time diverged "
            f"(indexed={virtual['indexed']}, scan={virtual['scan']})")
        assert dispatches["indexed"] == dispatches["scan"], (
            f"{workload}/{size}: dispatch count diverged")
        speedup = (per["scan"]["wall_s"] / per["indexed"]["wall_s"]
                   if per["indexed"]["wall_s"] > 0 else float("inf"))
        rows.append({
            "workload": workload, "size": size, "params": params,
            "dispatches": dispatches["indexed"],
            "virtual_elapsed": virtual["indexed"],
            "scan": per["scan"], "indexed": per["indexed"],
            "speedup": round(speedup, 2),
        })

    # Gate ratios are indexed/scan wall (lower is better): the gate
    # catches the fast path losing ground against the reference oracle.
    write_bench(make_record(
        "engine_throughput", smoke=SMOKE,
        virtual={f"{r['workload']}/{r['size']}": r["virtual_elapsed"]
                 for r in rows},
        wall_ratios={f"{r['workload']}/{r['size']}":
                     r["indexed"]["wall_s"] / r["scan"]["wall_s"]
                     for r in rows if r["scan"]["wall_s"] > 0},
        wall_seconds={f"{r['workload']}/{r['size']}": r["indexed"]["wall_s"]
                      for r in rows},
        min_speedup_required=MIN_SPEEDUP,
        workloads=rows), BENCH_PATH)

    header = (f"{'workload':<16} {'size':<6} {'disp':>6} {'vtime':>8} "
              f"{'scan /s':>10} {'indexed /s':>11} {'speedup':>8}")
    report("engine throughput: indexed vs scan dispatcher")
    report(header)
    report("-" * len(header))
    for r in rows:
        report(f"{r['workload']:<16} {r['size']:<6} {r['dispatches']:>6} "
               f"{r['virtual_elapsed']:>8} "
               f"{r['scan']['dispatches_per_s']:>10,.0f} "
               f"{r['indexed']['dispatches_per_s']:>11,.0f} "
               f"{r['speedup']:>7.2f}x")
    report(f"\nwritten: {BENCH_PATH.name}")

    largest = next(r for r in rows
                   if r["workload"] == "sched_stress" and r["size"] == "large")
    assert largest["speedup"] >= MIN_SPEEDUP, (
        f"largest configuration speedup {largest['speedup']}x is below the "
        f"required {MIN_SPEEDUP}x (scan {largest['scan']}, "
        f"indexed {largest['indexed']})")
