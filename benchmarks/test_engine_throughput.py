"""Wall-clock throughput of the scheduler/messaging fast path.

The repo's perf trajectory point for the engine (``BENCH_*.json``):
for each workload and size, run the identical program under every
relevant (execution core x dispatcher) leg --

* ``scan``    -- threaded core, the seed's O(n) linear scan +
  broadcast wakeups, kept as the reference oracle;
* ``indexed`` -- threaded core, two-level stale-free heap picker +
  per-process grant events (O(log n) per dispatch, exactly one thread
  woken per switch);
* ``coop``    -- the coop execution core (single-threaded discrete
  event loop, coroutine process bodies) with the indexed picker: a
  dispatch is a generator ``send()``, no thread handoff at all --

measure dispatches/second and end-to-end wall time, assert the virtual
times and dispatch counts are **bit-identical** across every leg (the
determinism contract), and write ``BENCH_engine_throughput.json`` at
the repo root.

Sizes shrink when ``ENGINE_BENCH_SMOKE`` is set (the CI smoke job);
smoke gate keys carry an ``@smoke`` suffix so the committed full-size
record can also carry the smoke-size virtual expectations -- that way
the CI smoke run still gets an exact virtual-time gate against the
committed baseline even though its wall times are not comparable.

Gates on a full-size run:

* indexed vs scan on ``sched_stress/large``: >= 2x wall speedup;
* coop on ``sched_stress/large``: >= 10x dispatches/s over the
  committed threaded-indexed baseline rate (16,414/s, the number the
  coroutine-core work set out to beat), and >= 2.5x live wall speedup
  over this run's own threaded-indexed leg;
* ``sched_stress_xl`` (1024 processes on 64 PEs): >= 2.5x live coop
  speedup -- the "1000-process configurations are routine" check;
* ``inqueue_backlog/large``: indexed must not be slower than scan
  (ratio <= 1.0, best-of-3 walls).  The historical 1.07 ratio was
  timer noise on a dispatch-starved messaging-bound shape (36
  dispatches in ~14 ms); the reworked shape fans 16 flooders into one
  receiver so the scan dispatcher's broadcast wakeups actually cost
  something and the comparison measures scheduling, not jitter;
* ``task_runtime/stress`` (the coroutine-task-runtime acceptance): a
  whole application -- coroutine task bodies through initiate/accept/
  send and the controllers, no per-task worker threads -- must show
  >= 5x live coop-vs-threaded dispatch throughput (best-of-3 walls).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from _bench_schema import make_record, write_bench

from repro.apps.jacobi import run_jacobi_windows
from repro.apps.matmul import run_matmul_tasks
from repro.apps.pipeline import run_pipeline
from repro.config.configuration import ClusterSpec, Configuration
from repro.core.accept import ALL_RECEIVED
from repro.core.task import TaskRegistry
from repro.core.taskid import ANY, PARENT
from repro.core.vm import PiscesVM
from repro.flex.presets import small_flex
from repro.mmos.process import co_block, co_charge, co_preempt
from repro.mmos.scheduler import create_engine

SMOKE = bool(os.environ.get("ENGINE_BENCH_SMOKE"))
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_throughput.json"

#: Minimum indexed-vs-scan speedup demanded on the largest scheduler
#: stress configuration (full sizes; the smoke run only sanity-checks).
MIN_SPEEDUP = 2.0 if not SMOKE else 1.2

#: The committed threaded-indexed rate on sched_stress/large before the
#: coop core landed (BENCH_engine_throughput.json, PRs 2-6).  The coop
#: acceptance bar is 10x this number.
BASELINE_THREADED_DPS = 16_414.2
MIN_COOP_VS_BASELINE = 10.0

#: Live floor: the coop leg must beat this run's own threaded-indexed
#: leg by this much on sched_stress/large and sched_stress_xl.  (The
#: same PR's picker rewrite also sped the threaded core up ~3x, so the
#: live ratio is far smaller than the vs-baseline ratio.)
MIN_COOP_LIVE_SPEEDUP = 2.5

#: App-level acceptance (the coroutine-task-runtime PR): a whole PISCES
#: application -- coroutine task bodies end-to-end through initiate /
#: accept / send / the task controllers -- must dispatch >= 5x faster
#: on the coop core than on this run's own threaded-indexed leg
#: (task_runtime/stress, best-of-3 walls per leg).
MIN_APP_COOP_SPEEDUP = 5.0


# ------------------------------------------------------------- workloads --

def sched_stress(n_procs: int, switches: int, dispatcher: str,
                 exec_core: str = "threaded", n_pes: int = 8):
    """Pure engine churn: ``n_procs`` coroutine processes on ``n_pes``
    PEs, each cycling charge/preempt with a periodic deadline nap (the
    heap re-key path).  Coroutine bodies run identically on both cores:
    natively on coop, via the kernel trampoline on threaded."""
    eng = create_engine(small_flex(n_pes), dispatcher=dispatcher,
                        exec_core=exec_core)
    pes = sorted(eng.machine.pes)

    def body():
        for i in range(switches):
            yield co_charge(3)
            yield co_preempt(2)
            if i % 5 == 4:
                yield co_block("nap", deadline=eng.now() + 7)

    for k in range(n_procs):
        eng.spawn(f"w{k}", pes[k % len(pes)], body)
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    dispatches, elapsed = eng.dispatch_count, eng.machine.elapsed()
    eng.shutdown()
    return wall, dispatches, elapsed


def build_backlog_registry(flooders: int, rounds: int,
                           backlog: int) -> TaskRegistry:
    """The section-13 hazard at fan-in: ``flooders`` senders pile LOG
    messages up unaccepted while the receiver repeatedly ACCEPTs a
    different type (GO)."""
    reg = TaskRegistry()

    @reg.tasktype("FLOOD")
    def flood(ctx):
        for _ in range(rounds):
            for i in range(backlog):
                ctx.send(PARENT, "LOG", i)
            ctx.send(PARENT, "GO")

    @reg.tasktype("BMAIN")
    def bmain(ctx):
        for _ in range(flooders):
            ctx.initiate("FLOOD", on=ANY)
        for _ in range(rounds * flooders):
            ctx.accept("GO")         # must skip the growing LOG backlog
        drained = ctx.accept(("LOG", ALL_RECEIVED))
        return drained.count

    return reg


def inqueue_backlog(flooders: int, rounds: int, backlog: int,
                    dispatcher: str, exec_core: str = "threaded",
                    trials: int = 1):
    """Best-of-``trials`` wall time for the fan-in backlog program."""
    os.environ["PISCES_DISPATCHER"] = dispatcher
    os.environ["PISCES_EXEC_CORE"] = exec_core
    try:
        best = None
        for _ in range(trials):
            reg = build_backlog_registry(flooders, rounds, backlog)
            config = Configuration(
                clusters=(ClusterSpec(1, 3, 8), ClusterSpec(2, 4, 8),
                          ClusterSpec(3, 5, 8)),
                name="inqueue-backlog")
            vm = PiscesVM(config, registry=reg)
            t0 = time.perf_counter()
            r = vm.run("BMAIN")
            wall = time.perf_counter() - t0
            assert r.value == flooders * rounds * backlog, \
                "backlog drain lost messages"
            dispatches, elapsed = vm.engine.dispatch_count, r.elapsed
            vm.shutdown()
            if best is None or wall < best[0]:
                best = (wall, dispatches, elapsed)
        return best
    finally:
        os.environ.pop("PISCES_DISPATCHER", None)
        os.environ.pop("PISCES_EXEC_CORE", None)


def build_task_runtime_registry(n_workers: int, rounds: int) -> TaskRegistry:
    """Whole-application dispatch stress: ``n_workers`` coroutine tasks
    each cycle ``rounds`` unit computes (one engine dispatch per round,
    through ``TaskContext`` and the KernelOp seam), then report DONE to
    a master blocked in a counted ACCEPT.  The compute loop dominates,
    so dispatches/second here measures the *task runtime's* per-slice
    cost -- the app-level counterpart of ``sched_stress``."""
    reg = TaskRegistry()

    @reg.tasktype("TRWORKER")
    def trworker(ctx, k):
        for _ in range(rounds):
            yield from ctx.compute(1)
        ctx.send(PARENT, "DONE", k)

    @reg.tasktype("TRMASTER")
    def trmaster(ctx):
        for k in range(n_workers):
            ctx.initiate("TRWORKER", k, on=ANY)
        res = yield from ctx.accept("DONE", count=n_workers)
        return res.count

    return reg


def task_runtime(n_workers: int, rounds: int, dispatcher: str,
                 exec_core: str = "threaded", trials: int = 1):
    """Best-of-``trials`` wall time for the task-runtime stress app."""
    os.environ["PISCES_DISPATCHER"] = dispatcher
    os.environ["PISCES_EXEC_CORE"] = exec_core
    try:
        best = None
        for _ in range(trials):
            reg = build_task_runtime_registry(n_workers, rounds)
            config = Configuration(
                clusters=(ClusterSpec(1, 3, 16), ClusterSpec(2, 4, 16)),
                name="task-runtime")
            vm = PiscesVM(config, registry=reg)
            t0 = time.perf_counter()
            r = vm.run("TRMASTER")
            wall = time.perf_counter() - t0
            assert r.value == n_workers, "task_runtime lost workers"
            dispatches, elapsed = vm.engine.dispatch_count, r.elapsed
            vm.shutdown()
            if best is None or wall < best[0]:
                best = (wall, dispatches, elapsed)
        return best
    finally:
        os.environ.pop("PISCES_DISPATCHER", None)
        os.environ.pop("PISCES_EXEC_CORE", None)


def app_workload(fn, dispatcher: str, exec_core: str = "threaded"):
    """Run one app under a (dispatcher, core) leg; (wall, dispatches, vt)."""
    os.environ["PISCES_DISPATCHER"] = dispatcher
    os.environ["PISCES_EXEC_CORE"] = exec_core
    try:
        t0 = time.perf_counter()
        r = fn()
        wall = time.perf_counter() - t0
        dispatches = r.vm.engine.dispatch_count
        elapsed = int(r.elapsed)
        r.vm.shutdown()
        return wall, dispatches, elapsed
    finally:
        os.environ.pop("PISCES_DISPATCHER", None)
        os.environ.pop("PISCES_EXEC_CORE", None)


#: Leg name -> (dispatcher, exec_core).
LEGS = {
    "scan": ("scan", "threaded"),
    "indexed": ("indexed", "threaded"),
    "coop": ("indexed", "coop"),
}


def _matrix(smoke: bool):
    """Entries: (workload, size, runner(dispatcher, core), params, legs,
    trials).  ``legs`` names the (core x dispatcher) pairs to run."""
    if smoke:
        stress_small, stress_large = (10, 8), (40, 12)
        stress_xl = (96, 4, 10)        # n_procs, switches, n_pes
        jac_small, jac_large = (8, 2, 3), (12, 2, 6)
        mm_small, mm_large = (8, 3), (12, 6)
        pipe_small, pipe_large = (3, 8), (5, 20)
        back_small, back_large = (3, 3, 10), (4, 4, 25)
        tr_small, tr_stress = (4, 20), (6, 40)
        trials = 1
    else:
        stress_small, stress_large = (24, 15), (120, 30)
        stress_xl = (1024, 10, 66)     # 1024 procs across 64 MMOS PEs
        jac_small, jac_large = (12, 2, 4), (24, 4, 10)
        mm_small, mm_large = (10, 4), (24, 10)
        pipe_small, pipe_large = (3, 12), (8, 48)
        back_small, back_large = (6, 4, 12), (16, 8, 30)
        tr_small, tr_stress = (12, 200), (24, 1000)
        trials = 3
    ab = ("scan", "indexed", "coop")
    return [
        ("sched_stress", "small",
         lambda d, c: sched_stress(*stress_small, d, c),
         {"n_procs": stress_small[0]}, ab, 1),
        ("sched_stress", "large",
         lambda d, c: sched_stress(*stress_large, d, c),
         {"n_procs": stress_large[0]}, ab, 1),
        ("sched_stress_xl", "xl",
         lambda d, c: sched_stress(stress_xl[0], stress_xl[1], d, c,
                                   n_pes=stress_xl[2]),
         {"n_procs": stress_xl[0], "n_pes": stress_xl[2] - 2},
         ("indexed", "coop"), 1),
        ("jacobi_windows", "small",
         lambda d, c: app_workload(lambda: run_jacobi_windows(
             n=jac_small[0], sweeps=jac_small[1], n_workers=jac_small[2]),
             d, c),
         {"n": jac_small[0], "workers": jac_small[2]}, ("scan", "indexed"), 1),
        ("jacobi_windows", "large",
         lambda d, c: app_workload(lambda: run_jacobi_windows(
             n=jac_large[0], sweeps=jac_large[1], n_workers=jac_large[2]),
             d, c),
         {"n": jac_large[0], "workers": jac_large[2]}, ab, 1),
        ("matmul_tasks", "small",
         lambda d, c: app_workload(lambda: run_matmul_tasks(
             n=mm_small[0], n_workers=mm_small[1]), d, c),
         {"n": mm_small[0], "workers": mm_small[1]}, ("scan", "indexed"), 1),
        ("matmul_tasks", "large",
         lambda d, c: app_workload(lambda: run_matmul_tasks(
             n=mm_large[0], n_workers=mm_large[1]), d, c),
         {"n": mm_large[0], "workers": mm_large[1]}, ab, 1),
        ("pipeline", "small",
         lambda d, c: app_workload(lambda: run_pipeline(
             n_stages=pipe_small[0], items=list(range(pipe_small[1]))), d, c),
         {"stages": pipe_small[0], "items": pipe_small[1]},
         ("scan", "indexed"), 1),
        ("pipeline", "large",
         lambda d, c: app_workload(lambda: run_pipeline(
             n_stages=pipe_large[0], items=list(range(pipe_large[1])),
             slots=8), d, c),
         {"stages": pipe_large[0], "items": pipe_large[1]}, ab, 1),
        ("task_runtime", "small",
         lambda d, c: task_runtime(*tr_small, d, c),
         {"workers": tr_small[0], "rounds": tr_small[1]},
         ("indexed", "coop"), 1),
        ("task_runtime", "stress",
         lambda d, c, t=trials: task_runtime(*tr_stress, d, c, trials=t),
         {"workers": tr_stress[0], "rounds": tr_stress[1]},
         ("indexed", "coop"), trials),
        ("inqueue_backlog", "small",
         lambda d, c, t=1: inqueue_backlog(*back_small, d, c, trials=t),
         {"flooders": back_small[0], "rounds": back_small[1],
          "backlog": back_small[2]}, ab, 1),
        ("inqueue_backlog", "large",
         lambda d, c, t=trials: inqueue_backlog(*back_large, d, c, trials=t),
         {"flooders": back_large[0], "rounds": back_large[1],
          "backlog": back_large[2]}, ab, trials),
    ]


def _run_matrix(smoke: bool, suffix: str, report, legs_override=None):
    """Run one size matrix; returns (rows, virtual, ratios, walls)."""
    rows, virtual, ratios, walls = [], {}, {}, {}
    for workload, size, runner, params, legs, _trials in _matrix(smoke):
        if legs_override is not None:
            legs = tuple(l for l in legs if l in legs_override)
        key = f"{workload}/{size}{suffix}"
        per, vts, disp = {}, {}, {}
        for leg in legs:
            dispatcher, core = LEGS[leg]
            wall, n_disp, vt = runner(dispatcher, core)
            per[leg] = {
                "wall_s": round(wall, 4),
                "dispatches_per_s":
                    round(n_disp / wall, 1) if wall > 0 else None,
            }
            vts[leg], disp[leg] = vt, n_disp
        # The determinism contract: every (core x dispatcher) leg
        # replays the exact same virtual history.
        for leg in legs:
            assert vts[leg] == vts[legs[0]], (
                f"{key}: virtual time diverged on {leg} "
                f"({vts[leg]} vs {legs[0]}={vts[legs[0]]})")
            assert disp[leg] == disp[legs[0]], (
                f"{key}: dispatch count diverged on {leg}")
        row = {
            "workload": workload, "size": size + suffix, "params": params,
            "dispatches": disp[legs[0]], "virtual_elapsed": vts[legs[0]],
            **{leg: per[leg] for leg in legs},
        }
        anchor = "indexed" if "indexed" in per else legs[0]
        if "scan" in per and "indexed" in per:
            row["speedup"] = round(
                per["scan"]["wall_s"] / per["indexed"]["wall_s"], 2) \
                if per["indexed"]["wall_s"] > 0 else None
            if per["scan"]["wall_s"] > 0:
                ratios[key] = per["indexed"]["wall_s"] / per["scan"]["wall_s"]
        if "coop" in per and "indexed" in per:
            row["coop_speedup"] = round(
                per["indexed"]["wall_s"] / per["coop"]["wall_s"], 2) \
                if per["coop"]["wall_s"] > 0 else None
            if per["indexed"]["wall_s"] > 0:
                ratios[f"{key}:coop"] = (per["coop"]["wall_s"]
                                         / per["indexed"]["wall_s"])
        virtual[key] = vts[legs[0]]
        walls[key] = per[anchor]["wall_s"]
        rows.append(row)
    return rows, virtual, ratios, walls


# ------------------------------------------------------------ the bench --

def test_engine_throughput(report):
    suffix = "@smoke" if SMOKE else ""
    rows, virtual, ratios, walls = _run_matrix(SMOKE, suffix, report)
    if not SMOKE:
        # Stamp the smoke-size virtual expectations into the committed
        # record too (indexed leg only -- virtual time is leg-invariant,
        # asserted above), so the CI smoke run keeps an exact
        # determinism gate against this baseline.
        _, smoke_virtual, _, _ = _run_matrix(
            True, "@smoke", report, legs_override=("indexed",))
        virtual.update(smoke_virtual)

    write_bench(make_record(
        "engine_throughput", smoke=SMOKE,
        virtual=virtual, wall_ratios=ratios, wall_seconds=walls,
        min_speedup_required=MIN_SPEEDUP,
        baseline_threaded_dps=BASELINE_THREADED_DPS,
        min_coop_vs_baseline=MIN_COOP_VS_BASELINE,
        min_coop_live_speedup=MIN_COOP_LIVE_SPEEDUP,
        min_app_coop_speedup=MIN_APP_COOP_SPEEDUP,
        workloads=rows), BENCH_PATH)

    header = (f"{'workload':<16} {'size':<12} {'disp':>6} {'vtime':>8} "
              f"{'scan /s':>10} {'indexed /s':>11} {'coop /s':>10} "
              f"{'idx x':>6} {'coop x':>6}")
    report("engine throughput: (core x dispatcher) legs per workload")
    report(header)
    report("-" * len(header))
    for r in rows:
        def rate(leg):
            d = r.get(leg)
            return f"{d['dispatches_per_s']:>{10 + (leg == 'indexed')},.0f}" \
                if d else " " * (10 + (leg == "indexed"))
        report(f"{r['workload']:<16} {r['size']:<12} {r['dispatches']:>6} "
               f"{r['virtual_elapsed']:>8} {rate('scan')} {rate('indexed')} "
               f"{rate('coop')} "
               f"{r.get('speedup') or '':>6} {r.get('coop_speedup') or '':>6}")
    report(f"\nwritten: {BENCH_PATH.name}")

    def row_for(workload, size):
        return next(r for r in rows if r["workload"] == workload
                    and r["size"] == size + suffix)

    largest = row_for("sched_stress", "large")
    assert largest["speedup"] >= MIN_SPEEDUP, (
        f"sched_stress/large indexed-vs-scan speedup {largest['speedup']}x "
        f"is below the required {MIN_SPEEDUP}x (scan {largest['scan']}, "
        f"indexed {largest['indexed']})")

    if not SMOKE:
        # Tentpole acceptance: >= 10x dispatch throughput over the
        # committed threaded-indexed baseline on sched_stress/large.
        coop_dps = largest["coop"]["dispatches_per_s"]
        assert coop_dps >= MIN_COOP_VS_BASELINE * BASELINE_THREADED_DPS, (
            f"coop core {coop_dps:,.0f} dispatches/s is below "
            f"{MIN_COOP_VS_BASELINE}x the committed threaded baseline "
            f"({BASELINE_THREADED_DPS:,.0f}/s)")
        for workload, size in (("sched_stress", "large"),
                               ("sched_stress_xl", "xl")):
            r = row_for(workload, size)
            assert r["coop_speedup"] >= MIN_COOP_LIVE_SPEEDUP, (
                f"{workload}/{size}: live coop speedup {r['coop_speedup']}x "
                f"below {MIN_COOP_LIVE_SPEEDUP}x (indexed {r['indexed']}, "
                f"coop {r['coop']})")
        # App-level acceptance: a full application on coroutine task
        # bodies must dispatch >= 5x faster on the coop core than on
        # this run's threaded-indexed leg.
        tr = row_for("task_runtime", "stress")
        assert tr["coop_speedup"] >= MIN_APP_COOP_SPEEDUP, (
            f"task_runtime/stress: app-level coop speedup "
            f"{tr['coop_speedup']}x below {MIN_APP_COOP_SPEEDUP}x "
            f"(indexed {tr['indexed']}, coop {tr['coop']})")
        # The reworked fan-in shape must not leave indexed slower than
        # scan (the old 36-dispatch shape gated timer noise instead).
        back = row_for("inqueue_backlog", "large")
        ratio = back["indexed"]["wall_s"] / back["scan"]["wall_s"]
        assert ratio <= 1.0, (
            f"inqueue_backlog/large: indexed dispatcher slower than scan "
            f"(ratio {ratio:.3f}; scan {back['scan']}, "
            f"indexed {back['indexed']})")
