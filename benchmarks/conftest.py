"""Shared benchmark fixtures.

Every benchmark regenerates one table/figure of the paper (or one
ablation from DESIGN.md section 2).  Each writes its reproduction table
to ``benchmarks/reports/<name>.txt`` and prints it, so
``pytest benchmarks/ --benchmark-only -s`` shows the full reproduction
output inline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.flex.presets import nasa_langley_flex32

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def report(report_dir, request):
    """Write-and-print sink for one benchmark's reproduction output."""
    chunks = []

    def sink(text: str) -> None:
        chunks.append(text)
        print(text)

    yield sink
    name = request.node.name.replace("/", "_").replace("[", "_").rstrip("]")
    (report_dir / f"{name}.txt").write_text("\n".join(chunks) + "\n")


@pytest.fixture
def nasa_machine():
    return nasa_langley_flex32()
