"""Causal-profiler overhead: zero virtual time, bounded wall time.

The profiler (``engine.prof_hook``, see :mod:`repro.obs.profile`) is a
pure observer; this benchmark proves the contract the subsystem is
built on, per workload:

* **virtual identity** -- elapsed ticks, dispatch count *and the full
  trace-event stream* are bit-identical with profiling on and off, on
  every workload, unconditionally;
* **wall clock** -- profiling-on wall time is bounded at x1.15 on the
  ``large-grain`` workload, whose members do real numpy work per
  scheduling event (the grain PISCES targets; the access-dense micro
  workloads time hooks against zero-wall virtual compute and are
  reported, not bounded).

Sizes are FIXED (no smoke shrink): the committed
``BENCH_profile_overhead.json`` gate carries the virtual-tick
fingerprints, and CI regenerates and compares them with
``benchmarks/compare.py`` -- identical sizes are what make that
comparison meaningful.  ``PROFILE_BENCH_SMOKE=1`` only drops the
timing repetitions and skips the wall-clock assertion.
"""

from __future__ import annotations

import os
import time

from _bench_schema import make_record, write_bench
from test_races_overhead import build_grain_registry

from repro.api import make_vm
from repro.apps.jacobi import build_force_registry, build_windows_registry
from repro.apps.matmul import build_tasks_registry
from repro.core.tracing import TraceEventType

SMOKE = bool(os.environ.get("PROFILE_BENCH_SMOKE"))

#: Allowed profiling-on wall-clock overhead at large grain.
MAX_WALL_OVERHEAD = 1.15

REPS = 1 if SMOKE else 3

#: Fixed sizes -- the gate fingerprints depend on them.
N, SWEEPS = 16, 2
GRAIN_N, GRAIN_SWEEPS = 256, 2

_ALL_EVENTS = tuple(t.value for t in TraceEventType)

#: (name, tasktype, args, registry builder, vm kwargs, wall-bounded?)
WORKLOADS = [
    ("large-grain", "GRAIN", (),
     lambda: build_grain_registry(GRAIN_N, GRAIN_SWEEPS),
     dict(n_clusters=1, force_pes_per_cluster=3), True),
    ("jacobi-force", "JFORCE", (N, SWEEPS),
     lambda: build_force_registry(N, SWEEPS),
     dict(n_clusters=1, force_pes_per_cluster=3), False),
    ("jacobi-windows", "JMASTER", (),
     lambda: build_windows_registry(N, SWEEPS, 3), {}, False),
    ("matmul-tasks", "MMASTER", (),
     lambda: build_tasks_registry(N, 3), {}, False),
]


def _run(ttype, args, build, kw, profile):
    vm = make_vm(registry=build(), trace_events=_ALL_EVENTS, **kw)
    if profile:
        vm.enable_profiling()
    t0 = time.perf_counter()
    r = vm.run(ttype, *args)
    wall = time.perf_counter() - t0
    fp = (int(r.elapsed), int(vm.engine.dispatch_count),
          [e.line() for e in vm.tracer.events])
    return wall, fp, vm


def _timed(fn):
    best = None
    out = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        out = fn()
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    return best, out


def test_profiling_charges_no_virtual_time(report):
    rows = []
    virtual = {}
    ratios = {}
    walls = {}
    report("causal-profiler overhead: virtual time and trace stream "
           "identical on every workload;")
    report(f"profiling wall < x{MAX_WALL_OVERHEAD} at large grain "
           f"(best of {REPS})")
    header = (f"{'workload':<16} {'vtime':>9} {'disp':>6} {'slices':>7} "
              f"{'base_s':>8} {'prof_s':>8} {'ratio':>6} {'wall bound':>11}")
    report(header)
    report("-" * len(header))

    for name, ttype, args, build, kw, bounded in WORKLOADS:
        base_wall, (_, base_fp, base_vm) = _timed(
            lambda: _run(ttype, args, build, kw, profile=False))
        base_vm.shutdown()

        prof_wall, (_, prof_fp, prof_vm) = _timed(
            lambda: _run(ttype, args, build, kw, profile=True))

        # The contract, in full: elapsed ticks, dispatch count and the
        # complete trace stream, bit for bit.
        assert prof_fp[0] == base_fp[0], (
            f"{name}: profiling changed elapsed virtual time "
            f"{base_fp[0]} -> {prof_fp[0]}")
        assert prof_fp[1] == base_fp[1], (
            f"{name}: profiling changed the dispatch count")
        assert prof_fp[2] == base_fp[2], (
            f"{name}: profiling perturbed the trace stream")

        prof = prof_vm.profiler
        n_slices = len(prof.slices())
        acct = prof.accounting()
        # The attribution must cover the run: recorded work equals the
        # per-PE busy ticks the accounting rolls up.
        assert sum(acct.busy_by_pe.values()) == prof.total_work()
        prof_vm.shutdown()

        ratio = prof_wall / base_wall if base_wall > 0 else 1.0
        virtual[name] = base_fp[0]
        walls[name] = base_wall
        if bounded:
            ratios[name] = ratio
        rows.append({
            "workload": name, "virtual_elapsed": base_fp[0],
            "dispatches": base_fp[1], "slices": n_slices,
            "trace_events": len(base_fp[2]),
            "wall_s": {"baseline": round(base_wall, 4),
                       "profiled": round(prof_wall, 4)},
            "profile_ratio": round(ratio, 3),
            "wall_bounded": bounded,
            "wait_ticks": acct.total_wait_ticks,
        })
        bound = f"x{MAX_WALL_OVERHEAD}" if bounded else "reported"
        report(f"{name:<16} {base_fp[0]:>9} {base_fp[1]:>6} {n_slices:>7} "
               f"{base_wall:>8.4f} {prof_wall:>8.4f} {ratio:>6.3f} "
               f"{bound:>11}")
        if bounded and not SMOKE:
            assert ratio <= MAX_WALL_OVERHEAD, (
                f"{name}: profiling wall overhead x{ratio:.3f} "
                f"(> x{MAX_WALL_OVERHEAD})")

    out = write_bench(make_record(
        "profile_overhead", smoke=SMOKE,
        virtual=virtual, wall_ratios=ratios, wall_seconds=walls,
        max_wall_overhead=MAX_WALL_OVERHEAD,
        wall_checked=not SMOKE, reps=REPS, workloads=rows))
    report(f"\nwritten: {out.name}")
