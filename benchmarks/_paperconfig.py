"""Shared benchmark helpers: the paper's worked configuration."""

from repro.config.configuration import ClusterSpec, Configuration


def section9_configuration() -> Configuration:
    """The paper's worked 18-PE mapping (section 9)."""
    return Configuration(
        clusters=(
            ClusterSpec(1, 3, 4),
            ClusterSpec(2, 4, 4, tuple(range(16, 21))),
            ClusterSpec(3, 5, 4, tuple(range(7, 16))),
            ClusterSpec(4, 6, 4, tuple(range(7, 16))),
        ),
        name="section9-example")
